"""Fleet conformance: sharding stays invisible for every backend.

The acceptance property from the fleet suite, lifted over the backend
registry: a fleet hosting per-home instances of any registered backend at
shard count 1, 2 or 4 produces, per home, exactly the alert sequence that
home's runtime produces standalone.  The fleet checkpoint manifest must
also round-trip the per-home backend choice.
"""

import pytest

from repro.fleet import (
    FleetGateway,
    build_fleet_homes,
    merged_ticks,
    replay_fleet,
    restore_fleet,
)
from repro.streaming import HardenedOnlineDice
from tests.backends.conftest import canon

FLEET_HOMES = 3
FLEET_SEED = 11
FLEET_HOURS = 28.0
FLEET_TRAIN_HOURS = 24.0


@pytest.fixture(scope="module")
def homes():
    return build_fleet_homes(
        FLEET_HOMES,
        seed=FLEET_SEED,
        hours=FLEET_HOURS,
        train_hours=FLEET_TRAIN_HOURS,
    )


def _fit(home, backend_name):
    # A fresh fit per runtime: backend instances carry transient streaming
    # state, so the standalone baseline and each sharded gateway must not
    # share one.  Fits are deterministic, so the models are identical.
    return home.fit_detector(backend=backend_name)


@pytest.fixture(scope="module")
def standalone_alerts(homes, backend_name):
    expected = {}
    for home in homes:
        runtime = HardenedOnlineDice(
            _fit(home, backend_name), start=home.split
        )
        alerts = runtime.ingest_many(list(home.live))
        alerts += runtime.finish_stream(home.trace.end)
        expected[home.home_id] = canon(alerts)
    return expected


def _build_gateway(num_shards, homes, backend_name):
    gateway = FleetGateway(num_shards)
    for home in homes:
        gateway.add_home(
            home.home_id, _fit(home, backend_name), start=home.split
        )
    return gateway


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_fleet_matches_standalone(
    num_shards, homes, backend_name, standalone_alerts
):
    gateway = _build_gateway(num_shards, homes, backend_name)
    replay_fleet(gateway, homes)
    for home in homes:
        assert canon(gateway.alerts_of(home.home_id)) == (
            standalone_alerts[home.home_id]
        ), f"{home.home_id} diverged at {num_shards} shards"
    assert gateway.unrouted == 0


def test_health_reports_backend_per_home(homes, backend_name):
    gateway = _build_gateway(2, homes, backend_name)
    rollup = gateway.health()["homes"]
    assert all(
        entry["backend"] == backend_name for entry in rollup.values()
    )


def test_checkpoint_manifest_round_trips_backend(
    homes, backend_name, standalone_alerts, tmp_path
):
    # Checkpoint mid-stream, restore with freshly fitted backends, replay
    # the tail: per-home alert parity with the standalone baseline, and
    # the manifest records which backend each home runs.
    import json

    first = _build_gateway(2, homes, backend_name)
    ticks = list(merged_ticks(homes))
    for _, batch in ticks[: len(ticks) // 2]:
        first.dispatch(batch)
    first.save_checkpoint(tmp_path)
    with open(tmp_path / "manifest.json", encoding="utf-8") as fh:
        manifest = json.load(fh)
    assert {
        entry["backend"] for entry in manifest["homes"].values()
    } == {backend_name}

    detectors = {home.home_id: _fit(home, backend_name) for home in homes}
    restored = restore_fleet(detectors, tmp_path, num_shards=2)
    replay_fleet(restored, homes)
    for home in homes:
        head = first.alerts_of(home.home_id)
        tail = restored.alerts_of(home.home_id)
        assert canon(head + tail) == standalone_alerts[home.home_id], (
            f"{home.home_id} diverged across checkpoint/restore"
        )
