"""Markov backend vs a hand-rolled scalar transition-probability oracle.

The same differential shape as the packed-Hamming sweep in
``tests/test_differential.py``: the production implementation (per-device
:class:`TransitionMatrix` chains, vector-ish window-state extraction) is
cross-checked against the obvious dict-of-dicts reimplementation on
seeded random deployments — training counts, row totals, and the
per-window violation decision, quarantine included.
"""

import random

from repro.core.backend import MarkovBackend, _BatchWindow
from tests.backends.conftest import (
    PERTURBATIONS,
    SEED,
    build_deployment,
    perturbed_live,
)

TRIALS = 20


class ScalarMarkovOracle:
    """The obvious scalar model: one ``{prev: {cur: count}}`` dict per
    device, trained by walking windows in order; a window violates for a
    device when its previous state is trusted (row total at or above
    ``min_row``) and the taken transition was never counted."""

    def __init__(self, registry, layout, min_row):
        self.layout = layout
        self.min_row = min_row
        self.sensors = sorted(
            d.device_id for d in registry if not d.is_actuator
        )
        self.actuators = sorted(
            d.device_id for d in registry if d.is_actuator
        )
        self.order = self.sensors + self.actuators
        self.counts = {device: {} for device in self.order}

    def n_states(self, device):
        if device in self.actuators:
            return 2
        return 1 << len(self.layout.bits_of_device(device))

    def states(self, mask, acts, quarantined=()):
        states = {}
        for device in self.sensors:
            if device in quarantined:
                states[device] = None
                continue
            value = 0
            for k, bit in enumerate(self.layout.bits_of_device(device)):
                if mask & (1 << bit):
                    value += 1 << k
            states[device] = value
        for device in self.actuators:
            states[device] = 1 if device in acts else 0
        return states

    def train(self, windows):
        prev = None
        for mask, acts in windows:
            cur = self.states(mask, acts)
            if prev is not None:
                for device in self.order:
                    row = self.counts[device].setdefault(prev[device], {})
                    row[cur[device]] = row.get(cur[device], 0) + 1
            prev = cur

    def count(self, device, prev, cur):
        return self.counts[device].get(prev, {}).get(cur, 0)

    def row_total(self, device, prev):
        return sum(self.counts[device].get(prev, {}).values())

    def violations(self, prev, states):
        if prev is None:
            return ()
        out = []
        for device in self.order:
            p, c = prev.get(device), states[device]
            if p is None or c is None:
                continue
            if self.row_total(device, p) >= self.min_row and (
                self.count(device, p, c) == 0
            ):
                out.append(device)
        return tuple(out)


def _deployment(rng, trial):
    return build_deployment(
        rng,
        hours=rng.choice([4.0, 6.0]),
        phase=rng.choice([300.0, 600.0]),
        k_binary=1 if trial == 0 else rng.randrange(1, 5),
        with_numeric=trial != 0 and rng.random() < 0.7,
        with_actuator=trial != 0 and rng.random() < 0.5,
    )


def _oracle_for(backend, registry, training):
    oracle = ScalarMarkovOracle(
        registry, backend.encoder.layout, backend.config.min_row_observations
    )
    oracle.train(backend.encode_window(training))
    return oracle


def test_trained_chains_match_scalar_counts():
    rng = random.Random(SEED)
    nonzero = 0
    for trial in range(TRIALS):
        registry, trace, split = _deployment(rng, trial)
        training = trace.slice(trace.start, split)
        backend = MarkovBackend(registry).fit(training)
        oracle = _oracle_for(backend, registry, training)
        assert tuple(oracle.order) == backend._device_order
        for device in oracle.order:
            chain = backend._chains[device]
            n = oracle.n_states(device)
            # Exhaustive over the state square: equal counts everywhere
            # also proves the chain holds no transitions the oracle missed.
            for p in range(n):
                assert chain.row_total(p) == oracle.row_total(device, p)
                for c in range(n):
                    assert chain.count(p, c) == oracle.count(device, p, c), (
                        f"trial {trial} {device} {p}->{c}"
                    )
                    nonzero += oracle.count(device, p, c) > 0
    assert nonzero > 0, "the corpus never trained a transition"


def test_live_verdicts_match_scalar_oracle():
    rng = random.Random(SEED + 1)
    total_violations = 0
    for trial in range(TRIALS):
        registry, trace, split = _deployment(rng, trial)
        training = trace.slice(trace.start, split)
        backend = MarkovBackend(registry).fit(training)
        oracle = _oracle_for(backend, registry, training)
        live = perturbed_live(
            rng, trace, split, PERTURBATIONS[trial % len(PERTURBATIONS)]
        )
        # Half the trials quarantine one random sensor mid-sweep coverage:
        # the oracle treats its state as unknown, exactly like the backend
        # must treat its masked bits.
        quarantined = ()
        qbits = 0
        if oracle.sensors and rng.random() < 0.5:
            victim = rng.choice(oracle.sensors)
            quarantined = (victim,)
            for bit in backend.encoder.layout.bits_of_device(victim):
                qbits |= 1 << bit
        windows = backend.encode_window(live)
        seconds = windows.window_seconds
        prev = None
        for i, (mask, acts) in enumerate(windows):
            start = windows.window_start(i)
            snap = _BatchWindow(i, start, start + seconds, mask, acts)
            verdict = backend.check(snap, qbits)
            states = oracle.states(mask, acts, quarantined)
            expected = oracle.violations(prev, states)
            assert verdict.payload[0] == expected, (
                f"trial {trial} window {i}"
            )
            assert verdict.violation == bool(expected)
            backend.observe_window(snap, qbits)
            prev = states
            total_violations += len(expected)
    assert total_violations > 0, "the corpus never produced a violation"
