"""Misuse errors: every wrong-backend path fails loud, early, and named.

The contract: an unknown backend name — in config, in ``create_backend``,
or on the CLI — produces one line naming the valid backends (CLI exit
code 2); restoring a checkpoint written by a different backend raises
:class:`CheckpointError` naming both backends.
"""

import random

import pytest

from repro.cli import main
from repro.core import DiceConfig, available_backends, create_backend
from repro.streaming import (
    CheckpointError,
    HardenedOnlineDice,
    restore_runtime,
)
from tests.backends.conftest import SEED, build_deployment, fit_backend


class TestUnknownBackendName:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError) as excinfo:
            DiceConfig(backend="nope")
        message = str(excinfo.value)
        assert "nope" in message
        for name in available_backends():
            assert name in message

    def test_create_backend_rejects_unknown_name(self):
        rng = random.Random(SEED)
        registry, _, _ = build_deployment(rng)
        with pytest.raises(ValueError) as excinfo:
            create_backend("nope", registry)
        message = str(excinfo.value)
        assert "nope" in message
        for name in available_backends():
            assert name in message

    def test_stream_cli_exits_2(self, capsys):
        code = main(
            [
                "stream", "houseA",
                "--hours", "8", "--train-hours", "6",
                "--backend", "nope",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "nope" in err
        for name in available_backends():
            assert name in err

    def test_scenarios_cli_exits_2(self, capsys):
        code = main(["scenarios", "--trials", "1", "--backend", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "nope" in err
        for name in available_backends():
            assert name in err


class TestCrossBackendRestore:
    def test_restore_names_both_backends(self):
        rng = random.Random(SEED + 7)
        registry, trace, split = build_deployment(rng)
        writer = HardenedOnlineDice(
            fit_backend("dice", registry, trace, split), start=split
        )
        writer.ingest_many(list(trace.slice(split, trace.end))[:50])
        snapshot = writer.checkpoint()
        target = fit_backend("markov", registry, trace, split)
        with pytest.raises(CheckpointError) as excinfo:
            restore_runtime(target, snapshot)
        message = str(excinfo.value)
        assert "'dice'" in message
        assert "'markov'" in message

    def test_same_backend_restore_still_works(self):
        # The guard must not reject the legitimate path it sits on.
        rng = random.Random(SEED + 7)
        registry, trace, split = build_deployment(rng)
        writer = HardenedOnlineDice(
            fit_backend("markov", registry, trace, split), start=split
        )
        writer.ingest_many(list(trace.slice(split, trace.end))[:50])
        snapshot = writer.checkpoint()
        resumed = restore_runtime(
            fit_backend("markov", registry, trace, split), snapshot
        )
        assert resumed.backend.name == "markov"
