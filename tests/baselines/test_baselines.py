"""Tests for the comparison detectors."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    CorrelationOnlyDetector,
    LcsCleanDetector,
    MajorityVoteDetector,
    MarkovOnlyDetector,
    TimeSeriesARDetector,
)
from repro.faults import inject_fail_stop, inject_spike, inject_stuck_at
from tests.conftest import HOUR


@pytest.fixture(scope="module")
def house(small_house):
    trace = small_house.trace
    training = trace.slice(0.0, 72 * HOUR)
    # Day 3, 18:00-24:00: covers dinner preparation, so kitchen sensors
    # are active after the fault onsets used below.
    segment = trace.slice(90 * HOUR, 96 * HOUR)
    return trace, training, segment


class TestRegistry:
    def test_all_baselines_registered(self):
        assert set(BASELINES) == {
            "correlation-only",
            "markov-only",
            "majority-vote",
            "timeseries-ar",
            "clean-lcs",
        }


class TestCorrelationOnly:
    def test_clean_segment_quiet(self, house):
        trace, training, segment = house
        detector = CorrelationOnlyDetector().fit(training)
        assert not detector.process(segment).detected

    def test_fail_stop_of_cofiring_sensor_detected(self, house):
        trace, training, segment = house
        detector = CorrelationOnlyDetector().fit(training)
        faulty = inject_fail_stop(segment, "fridge", segment.start + HOUR)
        assert detector.process(faulty).detected

    def test_requires_fit(self, house):
        trace, training, segment = house
        with pytest.raises(RuntimeError):
            CorrelationOnlyDetector().process(segment)


class TestMarkovOnly:
    def test_clean_segment_mostly_quiet(self, house):
        trace, training, segment = house
        detector = MarkovOnlyDetector().fit(training)
        report = detector.process(segment)
        assert len(report.detections) <= 2

    def test_weaker_than_dice_on_stuck_at(self, house):
        """The nearest-group fallback hides correlation damage, so the
        Markov-only ablation must not beat full DICE on a stuck-at fault —
        exactly the Table 2.1 story for transition-only monitors."""
        from repro.core import DiceDetector

        trace, training, segment = house
        rng = np.random.default_rng(0)
        faulty = inject_stuck_at(segment, "fridge", segment.start + HOUR, rng)
        dice = DiceDetector(trace.registry).fit(training)
        markov = MarkovOnlyDetector().fit(training)
        dice_detected = dice.process(faulty).detected
        markov_detected = markov.process(faulty).detected
        assert dice_detected
        assert markov_detected <= dice_detected


class TestMajorityVote:
    def test_needs_redundant_peers(self, house):
        trace, training, segment = house
        detector = MajorityVoteDetector().fit(training)
        # houseA has few same-type same-room sensors; the kitchen DOOR
        # sensors fall back to house-wide peers.
        assert all(
            peers for peers in detector._peers.values()
        )

    def test_stuck_active_sensor_flagged(self, house):
        trace, training, segment = house
        detector = MajorityVoteDetector().fit(training)
        rng = np.random.default_rng(0)
        faulty = inject_stuck_at(segment, "fridge", segment.start + HOUR, rng)
        report = detector.process(faulty)
        assert "fridge" in report.identified_devices()


class TestTimeSeriesAR:
    @pytest.fixture(scope="class")
    def testbed(self, small_testbed):
        trace = small_testbed.trace
        return (
            trace,
            trace.slice(0.0, 72 * HOUR),
            trace.slice(80 * HOUR, 86 * HOUR),
        )

    def test_spike_detected(self, testbed):
        trace, training, segment = testbed
        detector = TimeSeriesARDetector().fit(training)
        rng = np.random.default_rng(0)
        faulty = inject_spike(segment, "t_kitchen", segment.start + 2 * HOUR, rng)
        report = detector.process(faulty)
        assert "t_kitchen" in report.identified_devices()

    def test_fail_stop_invisible_by_design(self, testbed):
        trace, training, segment = testbed
        detector = TimeSeriesARDetector().fit(training)
        faulty = inject_fail_stop(segment, "t_kitchen", segment.start + HOUR)
        report = detector.process(faulty)
        assert "t_kitchen" not in report.identified_devices()

    def test_binary_only_home_has_no_models(self, house):
        trace, training, segment = house
        detector = TimeSeriesARDetector().fit(training)
        assert detector._models == {}


class TestLcsClean:
    def test_partners_learned(self, house):
        trace, training, segment = house
        detector = LcsCleanDetector().fit(training)
        assert detector._partners  # kitchen sensors co-activate

    def test_fail_stop_of_partnered_sensor(self, house):
        trace, training, _ = house
        detector = LcsCleanDetector().fit(training)
        # Long faulty stretch so co-activation statistics are meaningful.
        segment = trace.slice(78 * HOUR, 102 * HOUR)
        victims = [d for d in detector._partners if d in ("fridge", "cups_cupboard")]
        if not victims:
            pytest.skip("no partnered kitchen sensor in this seed")
        victim = victims[0]
        faulty = segment.without_device(victim)
        report = detector.process(faulty)
        assert victim in report.identified_devices()
