"""Shared fixtures: a small deterministic deployment and traces."""

import numpy as np
import pytest

from repro.core import DiceConfig, DiceDetector
from repro.model import (
    DeviceRegistry,
    SensorType,
    Trace,
    actuator,
    binary_sensor,
    numeric_sensor,
)

HOUR = 3600.0


@pytest.fixture
def registry():
    """Two binary sensors, one numeric sensor, one actuator."""
    return DeviceRegistry(
        [
            binary_sensor("motion_kitchen", SensorType.MOTION, "kitchen"),
            binary_sensor("motion_bedroom", SensorType.MOTION, "bedroom"),
            numeric_sensor("temp_kitchen", SensorType.TEMPERATURE, "kitchen"),
            actuator("hue_kitchen", SensorType.BULB, "kitchen"),
        ]
    )


def make_cyclic_trace(registry, hours=4.0, phase_seconds=600.0):
    """Alternating kitchen/bedroom phases with a rising/falling temperature
    and a kitchen bulb activation — enough structure for every DICE stage."""
    times, devs, vals = [], [], []
    horizon = hours * HOUR
    t = 0.0
    while t < horizon:
        half = phase_seconds / 2.0
        for s in np.arange(t, t + half, 30.0):
            times.append(s), devs.append(0), vals.append(1.0)
        for s in np.arange(t, t + half, 20.0):
            times.append(s), devs.append(2), vals.append(25.0 + (s - t) / 60.0)
        times.append(t + 70.0), devs.append(3), vals.append(1.0)
        times.append(t + half), devs.append(3), vals.append(0.0)
        for s in np.arange(t + half, t + phase_seconds, 30.0):
            times.append(s), devs.append(1), vals.append(1.0)
        for s in np.arange(t + half, t + phase_seconds, 20.0):
            times.append(s), devs.append(2), vals.append(25.0 + (t + phase_seconds - s) / 60.0)
        t += phase_seconds
    return Trace(
        registry,
        np.array(times),
        np.array(devs, dtype=np.int32),
        np.array(vals),
        start=0.0,
        end=horizon,
    )


@pytest.fixture
def cyclic_trace(registry):
    return make_cyclic_trace(registry)


@pytest.fixture
def fitted_detector(registry, cyclic_trace):
    training = cyclic_trace.slice(0.0, 3.0 * HOUR)
    return DiceDetector(registry, DiceConfig()).fit(training)


@pytest.fixture
def live_segment(cyclic_trace):
    return cyclic_trace.slice(3.0 * HOUR, 4.0 * HOUR)


@pytest.fixture(scope="session")
def small_house():
    """A short houseA recording shared across test modules (seeded)."""
    from repro.datasets import load_dataset

    return load_dataset("houseA", seed=11, hours=120.0)


@pytest.fixture(scope="session")
def small_testbed():
    """A short D_houseA recording (numeric sensors + actuators)."""
    from repro.datasets import load_dataset

    return load_dataset("D_houseA", seed=11, hours=120.0)
