"""Batch, scalar and cache-disabled detection paths must agree exactly.

The batched ``check_many`` matrix pass and the LRU memo are pure
optimisations: for any segment — clean or fault-injected — the
:class:`SegmentReport` (detections, identifications, window count, cache
counters) must be identical to the seed per-window scalar path.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import DiceConfig, DiceDetector
from repro.faults import FaultInjector, FaultType

HOUR = 3600.0


@pytest.fixture(scope="module")
def house(small_house):
    return small_house


def _fit(house, **config_kwargs):
    config = DiceConfig(**config_kwargs)
    training = house.trace.slice(0.0, 72.0 * HOUR)
    return DiceDetector(house.trace.registry, config).fit(training)


@pytest.fixture(scope="module")
def detector(house):
    return _fit(house)


@pytest.fixture(scope="module")
def uncached_detector(house):
    return _fit(house, correlation_cache_size=0)


def _segments(house):
    """A clean segment plus one per fault type, all seeded."""
    clean = house.trace.slice(80.0 * HOUR, 86.0 * HOUR)
    segments = [("clean", clean)]
    for i, fault_type in enumerate(
        (FaultType.FAIL_STOP, FaultType.STUCK_AT, FaultType.OUTLIER)
    ):
        injector = FaultInjector(np.random.default_rng(100 + i))
        faulty, fault = injector.inject(clean, fault_type=fault_type)
        segments.append((fault.fault_type.value, faulty))
    return segments


def _assert_reports_equal(a, b):
    assert a.detections == b.detections
    assert a.identifications == b.identifications
    assert a.timings.windows == b.timings.windows


class TestSegmentParity:
    def test_batch_matches_scalar(self, detector, house):
        for label, segment in _segments(house):
            detector._correlation_checker.clear_cache()
            scalar = detector.process(segment, batch=False)
            detector._correlation_checker.clear_cache()
            batch = detector.process(segment, batch=True)
            _assert_reports_equal(scalar, batch)
            # The memo is transparent to the counters too: both paths see
            # the same hit/miss stream for the same cold start.
            assert scalar.timings.correlation_cache_hits == (
                batch.timings.correlation_cache_hits
            ), label
            assert scalar.timings.correlation_cache_misses == (
                batch.timings.correlation_cache_misses
            ), label

    def test_cache_disabled_matches_cached(self, detector, uncached_detector, house):
        for _label, segment in _segments(house):
            detector._correlation_checker.clear_cache()
            cached = detector.process(segment, batch=True)
            uncached = uncached_detector.process(segment, batch=True)
            _assert_reports_equal(cached, uncached)

    def test_warm_cache_matches_cold(self, detector, house):
        _, segment = _segments(house)[1]
        detector._correlation_checker.clear_cache()
        cold = detector.process(segment, batch=True)
        warm = detector.process(segment, batch=True)
        _assert_reports_equal(cold, warm)
        assert warm.timings.correlation_cache_misses == 0
        assert warm.timings.correlation_cache_hits == warm.timings.windows

    def test_detection_outcome_fields_identical(self, detector, house):
        """Field-by-field, not just __eq__: guards against timing-bearing
        fields sneaking into the equality contract."""
        _, segment = _segments(house)[2]
        detector._correlation_checker.clear_cache()
        scalar = detector.process(segment, batch=False)
        detector._correlation_checker.clear_cache()
        batch = detector.process(segment, batch=True)
        for a, b in zip(scalar.detections, batch.detections):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
