"""Unit and property tests for packed bitsets and Hamming scans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import (
    PackedBitsets,
    hamming,
    mask_from_bits,
    pack_int,
    popcount,
    set_bits,
    unpack_int,
    words_needed,
)

masks = st.integers(min_value=0, max_value=(1 << 200) - 1)


class TestPrimitives:
    def test_words_needed(self):
        assert words_needed(0) == 1
        assert words_needed(64) == 1
        assert words_needed(65) == 2
        assert words_needed(200) == 4

    def test_pack_unpack_small(self):
        assert unpack_int(pack_int(0b1011, 1)) == 0b1011

    def test_pack_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_int(1 << 64, 1)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b10110) == 3

    def test_hamming(self):
        assert hamming(0b1010, 0b0110) == 2
        assert hamming(5, 5) == 0

    def test_set_bits_roundtrip(self):
        assert mask_from_bits(set_bits(0b101001)) == 0b101001

    def test_mask_from_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_from_bits([-1])


@settings(max_examples=80, deadline=None)
@given(mask=masks)
def test_pack_roundtrip_property(mask):
    assert unpack_int(pack_int(mask, 4)) == mask


@settings(max_examples=80, deadline=None)
@given(a=masks, b=masks)
def test_hamming_symmetry_and_identity(a, b):
    assert hamming(a, b) == hamming(b, a)
    assert hamming(a, a) == 0
    assert hamming(a, b) == popcount(a ^ b)


@settings(max_examples=50, deadline=None)
@given(a=masks, b=masks, c=masks)
def test_hamming_triangle_inequality(a, b, c):
    assert hamming(a, c) <= hamming(a, b) + hamming(b, c)


class TestPackedBitsets:
    def test_append_and_distances(self):
        bits = PackedBitsets(8)
        bits.extend([0b0001, 0b0011, 0b1111])
        dists = bits.distances(0b0001)
        assert list(dists) == [0, 1, 3]

    def test_within_sorted_by_distance(self):
        bits = PackedBitsets(8, [0b1111, 0b0001, 0b0011])
        ids, dists = bits.within(0b0001, 1)
        assert list(ids) == [1, 2]
        assert list(dists) == [0, 1]

    def test_wide_masks(self):
        wide = (1 << 150) | 1
        bits = PackedBitsets(160, [wide])
        assert bits.distances(wide)[0] == 0
        assert bits.distances(1)[0] == 1
        assert bits.masks == [wide]

    def test_empty_distances(self):
        bits = PackedBitsets(8)
        assert len(bits.distances(0)) == 0


@settings(max_examples=40, deadline=None)
@given(pool=st.lists(masks, min_size=1, max_size=20), probe=masks)
def test_packed_distances_match_reference(pool, probe):
    bits = PackedBitsets(200, pool)
    expected = [hamming(probe, m) for m in pool]
    assert list(bits.distances(probe)) == expected


class TestAmortizedGrowth:
    def test_append_grows_capacity_geometrically(self):
        bits = PackedBitsets(8)
        reallocations = 0
        buf = bits._buf
        for mask in range(1000):
            bits.append(mask)
            if bits._buf is not buf:
                reallocations += 1
                buf = bits._buf
        # Doubling from 16 → 1024 is 7 reallocations; a per-append vstack
        # would have done 1000.
        assert reallocations <= 8
        assert bits.masks == list(range(1000))
        assert list(bits.distances(0)) == [popcount(m) for m in range(1000)]

    def test_rows_view_tracks_length(self):
        bits = PackedBitsets(8)
        bits.extend([1, 2, 3])
        assert bits.rows.shape == (3, 1)
        bits.append(4)
        assert bits.rows.shape == (4, 1)
        assert len(bits) == 4

    def test_interleaved_append_extend(self):
        bits = PackedBitsets(130)
        wide = 1 << 129
        bits.append(wide)
        bits.extend([1, 3])
        bits.append(wide | 1)
        assert bits.masks == [wide, 1, 3, wide | 1]
        assert list(bits.distances(wide)) == [0, 2, 3, 1]


class TestDistancesMany:
    def test_matches_per_mask_distances(self):
        pool = [0b0001, 0b0011, 0b1111, 0b1000]
        bits = PackedBitsets(8, pool)
        probes = [0b0000, 0b0001, 0b1111, 0b1010]
        many = bits.distances_many(probes)
        assert many.shape == (4, 4)
        for i, probe in enumerate(probes):
            assert list(many[i]) == list(bits.distances(probe))

    def test_gemm_path_matches_reference(self):
        # ≥ 64 probes takes the float32 bit-plane GEMM branch; the result
        # must still be the exact integer Hamming distance.
        rng = np.random.default_rng(5)
        num_bits = 150
        pool = [int(rng.integers(0, 1 << 63)) | (1 << 149) for _ in range(90)]
        probes = [int(rng.integers(0, 1 << 63)) for _ in range(128)]
        bits = PackedBitsets(num_bits, pool)
        many = bits.distances_many(probes)
        for i, probe in enumerate(probes):
            assert list(many[i]) == [hamming(probe, m) for m in pool]

    def test_plane_cache_invalidates_on_growth(self):
        bits = PackedBitsets(8, [0b01, 0b10])
        probes = [0] * 70  # force the GEMM branch, populating the cache
        assert bits.distances_many(probes).shape == (70, 2)
        bits.append(0b11)
        many = bits.distances_many(probes)
        assert many.shape == (70, 3)
        assert list(many[0]) == [1, 1, 2]

    def test_accepts_packed_matrix(self):
        bits = PackedBitsets(8, [0b01, 0b111])
        packed = bits.pack_many([0b01, 0b10])
        many = bits.distances_many(packed)
        assert list(many[0]) == [0, 2]
        assert list(many[1]) == [2, 2]

    def test_empty_cases(self):
        bits = PackedBitsets(8, [1, 2])
        assert bits.distances_many([]).shape == (0, 2)
        assert PackedBitsets(8).distances_many([1]).shape == (1, 0)


@settings(max_examples=40, deadline=None)
@given(
    pool=st.lists(masks, min_size=1, max_size=12),
    probes=st.lists(masks, min_size=1, max_size=12),
)
def test_distances_many_matches_reference(pool, probes):
    bits = PackedBitsets(200, pool)
    many = bits.distances_many(probes)
    for i, probe in enumerate(probes):
        assert list(many[i]) == [hamming(probe, m) for m in pool]


class TestMaskedDistances:
    def test_masks_out_hidden_bits(self):
        bits = PackedBitsets(8, [0b1100, 0b0011])
        # Only the low two bits are visible: 0b1100 vs probe 0b0001 differs
        # in bit 0 alone once the high bits are hidden.
        assert list(bits.masked_distances(0b0001, visible=0b0011)) == [1, 1]

    def test_none_visible_equals_distances(self):
        bits = PackedBitsets(8, [0b1100, 0b0011])
        assert list(bits.masked_distances(0b0001, None)) == list(
            bits.distances(0b0001)
        )

    def test_wide_visible_mask(self):
        wide = (1 << 150) | 0b1
        bits = PackedBitsets(160, [wide])
        assert bits.masked_distances(0b1, visible=(1 << 150) - 1)[0] == 0
        assert bits.masked_distances(0b1, visible=wide)[0] == 1

    def test_pickle_roundtrip_drops_plane_cache(self):
        import pickle

        bits = PackedBitsets(8, [1, 2, 3])
        bits.distances_many([0] * 70)  # populate the GEMM plane cache
        clone = pickle.loads(pickle.dumps(bits))
        assert clone._planes is None
        assert clone.masks == bits.masks
        assert list(clone.distances(1)) == list(bits.distances(1))
