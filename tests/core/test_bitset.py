"""Unit and property tests for packed bitsets and Hamming scans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import (
    PackedBitsets,
    hamming,
    mask_from_bits,
    pack_int,
    popcount,
    set_bits,
    unpack_int,
    words_needed,
)

masks = st.integers(min_value=0, max_value=(1 << 200) - 1)


class TestPrimitives:
    def test_words_needed(self):
        assert words_needed(0) == 1
        assert words_needed(64) == 1
        assert words_needed(65) == 2
        assert words_needed(200) == 4

    def test_pack_unpack_small(self):
        assert unpack_int(pack_int(0b1011, 1)) == 0b1011

    def test_pack_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_int(1 << 64, 1)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b10110) == 3

    def test_hamming(self):
        assert hamming(0b1010, 0b0110) == 2
        assert hamming(5, 5) == 0

    def test_set_bits_roundtrip(self):
        assert mask_from_bits(set_bits(0b101001)) == 0b101001

    def test_mask_from_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_from_bits([-1])


@settings(max_examples=80, deadline=None)
@given(mask=masks)
def test_pack_roundtrip_property(mask):
    assert unpack_int(pack_int(mask, 4)) == mask


@settings(max_examples=80, deadline=None)
@given(a=masks, b=masks)
def test_hamming_symmetry_and_identity(a, b):
    assert hamming(a, b) == hamming(b, a)
    assert hamming(a, a) == 0
    assert hamming(a, b) == popcount(a ^ b)


@settings(max_examples=50, deadline=None)
@given(a=masks, b=masks, c=masks)
def test_hamming_triangle_inequality(a, b, c):
    assert hamming(a, c) <= hamming(a, b) + hamming(b, c)


class TestPackedBitsets:
    def test_append_and_distances(self):
        bits = PackedBitsets(8)
        bits.extend([0b0001, 0b0011, 0b1111])
        dists = bits.distances(0b0001)
        assert list(dists) == [0, 1, 3]

    def test_within_sorted_by_distance(self):
        bits = PackedBitsets(8, [0b1111, 0b0001, 0b0011])
        ids, dists = bits.within(0b0001, 1)
        assert list(ids) == [1, 2]
        assert list(dists) == [0, 1]

    def test_wide_masks(self):
        wide = (1 << 150) | 1
        bits = PackedBitsets(160, [wide])
        assert bits.distances(wide)[0] == 0
        assert bits.distances(1)[0] == 1
        assert bits.masks == [wide]

    def test_empty_distances(self):
        bits = PackedBitsets(8)
        assert len(bits.distances(0)) == 0


@settings(max_examples=40, deadline=None)
@given(pool=st.lists(masks, min_size=1, max_size=20), probe=masks)
def test_packed_distances_match_reference(pool, probe):
    bits = PackedBitsets(200, pool)
    expected = [hamming(probe, m) for m in pool]
    assert list(bits.distances(probe)) == expected
