"""Tests for the correlation and transition checks (§3.3)."""


from repro.core import (
    BitLayout,
    CorrelationChecker,
    DiceConfig,
    GroupRegistry,
    TransitionCase,
    TransitionChecker,
    TransitionModel,
)


def groups_with(registry, masks):
    groups = GroupRegistry(BitLayout(registry))
    for mask in masks:
        groups.add(mask)
    return groups


class TestCorrelationChecker:
    def test_exact_match_is_main_group(self, registry):
        groups = groups_with(registry, [0b01, 0b11])
        checker = CorrelationChecker(groups, DiceConfig())
        result = checker.check(0b01)
        assert not result.is_violation
        assert groups.mask_of(result.main_group) == 0b01

    def test_near_misses_are_probable_groups(self, registry):
        groups = groups_with(registry, [0b01, 0b11])
        checker = CorrelationChecker(groups, DiceConfig())
        result = checker.check(0b01)
        probable_masks = [groups.mask_of(g) for g, _ in result.probable_groups]
        assert 0b11 in probable_masks

    def test_no_match_is_violation(self, registry):
        groups = groups_with(registry, [0b11000])
        checker = CorrelationChecker(groups, DiceConfig(max_candidate_distance=1))
        result = checker.check(0b00001)
        assert result.is_violation
        assert result.probable_groups == ()

    def test_candidate_distance_derives_from_fault_count(self, registry):
        # Numeric sensors present: one fault may flip three bits.
        checker = CorrelationChecker(groups_with(registry, [0]), DiceConfig())
        assert checker.max_distance == 3
        two_fault = CorrelationChecker(
            groups_with(registry, [0]), DiceConfig(num_faults=2)
        )
        assert two_fault.max_distance == 6

    def test_nearest_widens_search(self, registry):
        groups = groups_with(registry, [0b11111])
        checker = CorrelationChecker(groups, DiceConfig(max_candidate_distance=1))
        hits = checker.nearest(0, limit_distance=5)
        assert hits and hits[0][1] == 5


def model_from(sequence, activations=None):
    activations = activations or [frozenset()] * len(sequence)
    return TransitionModel.extract(sequence, activations)


class TestCorrelationCache:
    def test_repeat_check_hits_cache(self, registry):
        groups = groups_with(registry, [0b01, 0b11])
        checker = CorrelationChecker(groups, DiceConfig())
        first = checker.check(0b01)
        second = checker.check(0b01)
        assert first == second
        assert checker.cache_info() == {
            "hits": 1,
            "misses": 1,
            "size": 1,
            "max_size": DiceConfig().correlation_cache_size,
            "evictions": 0,
        }

    def test_cache_size_zero_disables_memoisation(self, registry):
        groups = groups_with(registry, [0b01])
        checker = CorrelationChecker(groups, DiceConfig(), cache_size=0)
        checker.check(0b01)
        checker.check(0b01)
        info = checker.cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 2
        assert info["size"] == 0

    def test_lru_evicts_oldest_entry(self, registry):
        groups = groups_with(registry, [0b01, 0b10, 0b11])
        checker = CorrelationChecker(groups, DiceConfig(), cache_size=2)
        checker.check(0b01)
        checker.check(0b10)
        checker.check(0b01)  # touch 0b01 so 0b10 is now the LRU entry
        checker.check(0b11)  # evicts 0b10
        assert set(checker._cache) == {0b01, 0b11}
        checker.check(0b10)
        assert checker.cache_misses == 4  # 0b10 had to be re-scanned

    def test_registry_growth_invalidates_cache(self, registry):
        groups = groups_with(registry, [0b11])
        checker = CorrelationChecker(groups, DiceConfig())
        assert checker.check(0b01).main_group is None
        groups.add(0b01)  # bumps GroupRegistry.version
        result = checker.check(0b01)
        assert result.main_group is not None
        assert groups.mask_of(result.main_group) == 0b01

    def test_check_many_matches_scalar_results_and_counters(self, registry):
        groups = groups_with(registry, [0b001, 0b011, 0b110])
        probes = [0b001, 0b111, 0b001, 0b011, 0b111, 0b000]
        scalar = CorrelationChecker(groups, DiceConfig())
        scalar_results = [scalar.check(mask) for mask in probes]
        batch = CorrelationChecker(groups, DiceConfig())
        batch_results = batch.check_many(probes)
        assert batch_results == scalar_results
        assert batch.cache_info() == scalar.cache_info()

    def test_check_many_without_cache_matches_scan(self, registry):
        groups = groups_with(registry, [0b001, 0b011])
        probes = [0b001, 0b010, 0b001]
        checker = CorrelationChecker(groups, DiceConfig(), cache_size=0)
        assert checker.check_many(probes) == [checker.scan(m) for m in probes]

    def test_check_many_empty_registry(self, registry):
        groups = groups_with(registry, [])
        checker = CorrelationChecker(groups, DiceConfig())
        results = checker.check_many([0b01, 0b10])
        assert all(r.is_violation for r in results)

    def test_clear_cache_resets_entries_not_counters(self, registry):
        groups = groups_with(registry, [0b01])
        checker = CorrelationChecker(groups, DiceConfig())
        checker.check(0b01)
        checker.check(0b01)
        checker.clear_cache()
        info = checker.cache_info()
        assert info["size"] == 0
        assert info["hits"] == 1 and info["misses"] == 1


class TestTransitionChecker:
    def config(self, **kw):
        defaults = dict(min_group_observations=1, g2g_two_step_closure=False)
        defaults.update(kw)
        return DiceConfig(**defaults)

    def test_known_transition_passes(self):
        checker = TransitionChecker(model_from([0, 1]), self.config())
        assert checker.check(0, 1, frozenset(), frozenset()) == []

    def test_unknown_g2g_transition_violates(self):
        checker = TransitionChecker(model_from([0, 1, 0, 1]), self.config())
        violations = checker.check(1, 1, frozenset(), frozenset())
        assert [v.case for v in violations] == [TransitionCase.G2G]

    def test_none_prev_group_skips_g2g(self):
        checker = TransitionChecker(model_from([0, 1]), self.config())
        assert checker.check(None, 1, frozenset(), frozenset()) == []

    def test_g2a_violation_for_unseen_activation(self):
        model = model_from([0, 1], [frozenset(), frozenset({"hue"})])
        checker = TransitionChecker(model, self.config())
        violations = checker.check(1, 0, frozenset(), frozenset({"hue"}))
        assert any(v.case is TransitionCase.G2A for v in violations)
        assert violations[0].actuator == "hue"

    def test_g2a_known_activation_passes(self):
        model = model_from([0, 1], [frozenset(), frozenset({"hue"})])
        checker = TransitionChecker(model, self.config())
        assert checker.check(0, 1, frozenset(), frozenset({"hue"})) == []

    def test_a2g_violation(self):
        model = model_from([0, 1, 2], [frozenset({"hue"}), frozenset(), frozenset()])
        checker = TransitionChecker(model, self.config())
        violations = checker.check(0, 2, frozenset({"hue"}), frozenset())
        assert any(v.case is TransitionCase.A2G for v in violations)

    def test_a2g_known_passes(self):
        model = model_from([0, 1, 2], [frozenset({"hue"}), frozenset(), frozenset()])
        checker = TransitionChecker(model, self.config())
        assert checker.check(0, 1, frozenset({"hue"}), frozenset()) == []

    def test_min_group_observations_guard(self, registry):
        groups = groups_with(registry, [0b01, 0b10])
        model = model_from([0, 1, 0, 1])
        checker = TransitionChecker(
            model, self.config(min_group_observations=5), groups
        )
        # Both groups observed only twice -> below confidence -> no violation.
        assert checker.check(1, 1, frozenset(), frozenset()) == []

    def test_two_step_closure_absorbs_aliased_pair(self):
        # Training: a -> b -> c (b is a short-dwell hand-over group).
        model = model_from([0, 1, 2, 0, 1, 2])
        strict = TransitionChecker(model, self.config())
        assert strict.check(0, 2, frozenset(), frozenset())
        closed = TransitionChecker(
            model, self.config(g2g_two_step_closure=True)
        )
        assert closed.check(0, 2, frozenset(), frozenset()) == []

    def test_closure_ignores_long_dwell_middles(self):
        # b self-loops heavily: it is a hub, not a skipped boundary group.
        sequence = [0, 1, 1, 1, 1, 1, 1, 1, 1, 2] * 2
        model = model_from(sequence)
        closed = TransitionChecker(model, self.config(g2g_two_step_closure=True))
        violations = closed.check(0, 2, frozenset(), frozenset())
        assert [v.case for v in violations] == [TransitionCase.G2G]
