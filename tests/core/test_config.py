"""Tests for DiceConfig validation and derived quantities."""

import pytest

from repro.core import (
    BITS_PER_BINARY_DEVICE,
    BITS_PER_NUMERIC_SENSOR,
    DEFAULT_CONFIG,
    DiceConfig,
)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_seconds": 0},
            {"window_seconds": -1},
            {"num_faults": 0},
            {"max_candidate_distance": 0},
            {"max_identification_windows": 0},
            {"min_row_observations": 0},
            {"min_group_observations": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiceConfig(**kwargs)

    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.window_seconds == 60.0
        assert DEFAULT_CONFIG.num_faults == 1
        assert DEFAULT_CONFIG.num_thre == 1


class TestDerived:
    def test_candidate_distance_binary_only(self):
        config = DiceConfig(num_faults=1)
        assert config.candidate_distance(has_numeric_sensors=False) == (
            BITS_PER_BINARY_DEVICE
        )

    def test_candidate_distance_with_numeric(self):
        config = DiceConfig(num_faults=2)
        assert config.candidate_distance(has_numeric_sensors=True) == (
            2 * BITS_PER_NUMERIC_SENSOR
        )

    def test_explicit_override_wins(self):
        config = DiceConfig(max_candidate_distance=7)
        assert config.candidate_distance(True) == 7
        assert config.candidate_distance(False) == 7

    def test_numthre_tracks_fault_count(self):
        assert DiceConfig(num_faults=3).num_thre == 3

    def test_with_creates_modified_copy(self):
        base = DiceConfig()
        changed = base.with_(window_seconds=30.0)
        assert changed.window_seconds == 30.0
        assert base.window_seconds == 60.0
        assert changed.num_faults == base.num_faults
