"""End-to-end tests for the DiceDetector driver."""

import numpy as np
import pytest

from repro.core import (
    CORRELATION_CHECK,
    TRANSITION_CHECK,
    DiceConfig,
    DiceDetector,
)
from tests.conftest import HOUR, make_cyclic_trace


class TestFitting:
    def test_requires_fit_before_process(self, registry, live_segment):
        detector = DiceDetector(registry)
        with pytest.raises(RuntimeError):
            detector.process(live_segment)

    def test_fit_builds_model(self, fitted_detector):
        model = fitted_detector.model
        assert model.training_windows == 180
        assert len(model.groups) >= 2
        assert model.correlation_degree > 0

    def test_fit_returns_self(self, registry, cyclic_trace):
        detector = DiceDetector(registry)
        assert detector.fit(cyclic_trace) is detector
        assert detector.is_fitted


class TestFaultlessProcessing:
    def test_no_detection_on_clean_segment(self, fitted_detector, live_segment):
        report = fitted_detector.process(live_segment)
        assert not report.detected
        assert report.identifications == []
        assert report.n_windows == 60

    def test_timings_are_recorded(self, fitted_detector, live_segment):
        report = fitted_detector.process(live_segment)
        assert report.timings.windows == 60
        per_window = report.timings.per_window()
        assert set(per_window) == {
            "encoding",
            "correlation_check",
            "transition_check",
            "identification",
        }


class TestFaultDetection:
    def test_fail_stop_detected_and_identified(self, fitted_detector, live_segment):
        faulty = live_segment.without_device("motion_kitchen")
        report = fitted_detector.process(faulty)
        assert report.detected
        assert report.first_detection.check == CORRELATION_CHECK
        assert report.first_identification.devices == frozenset({"motion_kitchen"})
        assert "motion_kitchen" in report.identified_devices()

    def test_detection_time_is_window_end(self, fitted_detector, live_segment):
        faulty = live_segment.without_device("motion_kitchen")
        report = fitted_detector.process(faulty)
        first = report.first_detection
        assert first.time == pytest.approx(
            live_segment.start + (first.window + 1) * 60.0
        )

    def test_stuck_binary_detected(self, fitted_detector, live_segment):
        # motion_bedroom stuck active: keeps firing around the clock.
        extra_t = np.arange(live_segment.start, live_segment.end, 30.0)
        faulty = live_segment.with_extra_events(
            extra_t,
            np.full(len(extra_t), 1, dtype=np.int32),
            np.ones(len(extra_t)),
        )
        report = fitted_detector.process(faulty)
        assert report.detected
        assert "motion_bedroom" in report.identified_devices()

    def test_identification_triggered_by_is_recorded(
        self, fitted_detector, live_segment
    ):
        faulty = live_segment.without_device("motion_kitchen")
        report = fitted_detector.process(faulty)
        record = report.first_identification
        assert record is not None
        assert record.triggered_by in (CORRELATION_CHECK, TRANSITION_CHECK)
        assert record.windows_used >= 1

    def test_segment_end_flushes_open_session(self, registry, cyclic_trace):
        config = DiceConfig(max_identification_windows=10_000)
        detector = DiceDetector(registry, config).fit(cyclic_trace.slice(0, 3 * HOUR))
        # A short, entirely-anomalous segment: session cannot converge.
        segment = cyclic_trace.slice(3 * HOUR, 3 * HOUR + 300.0)
        faulty = segment.without_device("motion_kitchen")
        report = detector.process(faulty)
        if report.detected and not report.identifications:
            pytest.fail("open identification session was not flushed")


class TestConfigInteraction:
    def test_window_seconds_flows_to_encoder(self, registry, cyclic_trace):
        detector = DiceDetector(registry, DiceConfig(window_seconds=120.0))
        detector.fit(cyclic_trace.slice(0, 2 * HOUR))
        assert detector.model.encoder.window_seconds == 120.0
        assert detector.model.training_windows == 60

    def test_results_are_deterministic(self, registry):
        trace = make_cyclic_trace(registry, hours=4.0)
        training = trace.slice(0, 3 * HOUR)
        segment = trace.slice(3 * HOUR, 4 * HOUR).without_device("motion_kitchen")
        a = DiceDetector(registry).fit(training).process(segment)
        b = DiceDetector(registry).fit(training).process(segment)
        assert [d.window for d in a.detections] == [d.window for d in b.detections]
        assert a.identified_devices() == b.identified_devices()
