"""Tests for the state-set encoder (Eqs. 3.1-3.4)."""

import numpy as np
import pytest

from repro.core import BitLayout, StateSetEncoder
from repro.model import DeviceRegistry, SensorType, Trace, binary_sensor
from tests.conftest import make_cyclic_trace


def trace_of(registry, triples, end):
    times = np.array([t for t, _, _ in triples], dtype=float)
    devs = np.array([registry.index_of(d) for _, d, _ in triples], dtype=np.int32)
    vals = np.array([v for _, _, v in triples], dtype=float)
    return Trace(registry, times, devs, vals, start=0.0, end=end)


class TestBitLayout:
    def test_binary_first_then_numeric_triplets(self, registry):
        layout = BitLayout(registry)
        assert layout.num_bits == 2 + 3
        assert layout.bits_of_device("motion_kitchen") == (0,)
        assert layout.bits_of_device("temp_kitchen") == (2, 3, 4)

    def test_actuators_have_no_bits(self, registry):
        layout = BitLayout(registry)
        with pytest.raises(KeyError):
            layout.bits_of_device("hue_kitchen")

    def test_device_of_bit(self, registry):
        layout = BitLayout(registry)
        assert layout.device_of_bit(0) == "motion_kitchen"
        for bit in (2, 3, 4):
            assert layout.device_of_bit(bit) == "temp_kitchen"

    def test_devices_of_mask_deduplicates_numeric(self, registry):
        layout = BitLayout(registry)
        mask = (1 << 2) | (1 << 3)  # two temp bits
        assert layout.devices_of_mask(mask) == ["temp_kitchen"]

    def test_describe(self, registry):
        layout = BitLayout(registry)
        text = layout.describe((1 << 0) | (1 << 4))
        assert "motion_kitchen" in text
        assert "temp_kitchen.mean" in text

    def test_has_numeric(self, registry):
        assert BitLayout(registry).has_numeric
        binary_only = DeviceRegistry([binary_sensor("m", SensorType.MOTION)])
        assert not BitLayout(binary_only).has_numeric


class TestBinaryEncoding:
    def test_or_semantics(self, registry):
        encoder = StateSetEncoder(registry, 60.0)
        trace = trace_of(registry, [(10.0, "motion_kitchen", 1.0)], end=120.0)
        encoder.fit(trace)
        windowed = encoder.encode(trace)
        assert len(windowed) == 2
        assert windowed.masks[0] == 1 << 0
        assert windowed.masks[1] == 0

    def test_zero_valued_event_does_not_activate(self, registry):
        encoder = StateSetEncoder(registry, 60.0)
        trace = trace_of(registry, [(10.0, "motion_kitchen", 0.0)], end=60.0)
        encoder.fit(trace)
        assert encoder.encode(trace).masks[0] == 0


class TestNumericEncoding:
    def fit_encoder(self, registry, trace):
        return StateSetEncoder(registry, 60.0).fit(trace)

    def test_value_threshold_is_training_mean(self, registry):
        trace = trace_of(
            registry,
            [(0.0, "temp_kitchen", 10.0), (30.0, "temp_kitchen", 30.0)],
            end=60.0,
        )
        encoder = self.fit_encoder(registry, trace)
        assert encoder.value_threshold("temp_kitchen") == pytest.approx(20.0)

    def test_trend_bit(self, registry):
        trace = trace_of(
            registry,
            [(0.0, "temp_kitchen", 10.0), (50.0, "temp_kitchen", 30.0)],
            end=60.0,
        )
        encoder = self.fit_encoder(registry, trace)
        mask = encoder.encode(trace).masks[0]
        trend_bit = encoder.layout.bits_of_device("temp_kitchen")[1]
        assert mask >> trend_bit & 1 == 1

    def test_mean_bit_strictly_above_threshold(self, registry):
        # Constant readings: window mean equals the training mean, and the
        # paper's Eq. 3.4 is a strict inequality, so the bit stays 0.
        trace = trace_of(
            registry,
            [(0.0, "temp_kitchen", 20.0), (30.0, "temp_kitchen", 20.0)],
            end=60.0,
        )
        encoder = self.fit_encoder(registry, trace)
        mask = encoder.encode(trace).masks[0]
        mean_bit = encoder.layout.bits_of_device("temp_kitchen")[2]
        assert mask >> mean_bit & 1 == 0

    def test_skew_bit_positive_for_convex_ramp(self, registry):
        values = [10.0, 10.5, 11.0, 13.0, 20.0]
        triples = [(i * 10.0, "temp_kitchen", v) for i, v in enumerate(values)]
        trace = trace_of(registry, triples, end=60.0)
        encoder = self.fit_encoder(registry, trace)
        mask = encoder.encode(trace).masks[0]
        skew_bit = encoder.layout.bits_of_device("temp_kitchen")[0]
        assert mask >> skew_bit & 1 == 1

    def test_skew_bit_zero_for_constant(self, registry):
        triples = [(i * 10.0, "temp_kitchen", 5.0) for i in range(5)]
        trace = trace_of(registry, triples, end=60.0)
        encoder = self.fit_encoder(registry, trace)
        skew_bit = encoder.layout.bits_of_device("temp_kitchen")[0]
        assert encoder.encode(trace).masks[0] >> skew_bit & 1 == 0

    def test_empty_window_encodes_to_zero(self, registry):
        trace = trace_of(registry, [(70.0, "temp_kitchen", 99.0)], end=180.0)
        encoder = self.fit_encoder(registry, trace)
        masks = encoder.encode(trace).masks
        assert masks[0] == 0 and masks[2] == 0


class TestActuatorActivations:
    def test_activations_tracked_per_window(self, registry):
        encoder = StateSetEncoder(registry, 60.0)
        trace = trace_of(
            registry,
            [(10.0, "hue_kitchen", 1.0), (70.0, "hue_kitchen", 0.0)],
            end=120.0,
        )
        encoder.fit(trace)
        windowed = encoder.encode(trace)
        assert windowed.actuator_activations[0] == frozenset({"hue_kitchen"})
        assert windowed.actuator_activations[1] == frozenset()


class TestEncoderGuards:
    def test_encode_requires_fit(self, registry):
        encoder = StateSetEncoder(registry, 60.0)
        with pytest.raises(RuntimeError):
            encoder.encode(Trace.empty(registry, 0.0, 60.0))

    def test_foreign_registry_rejected(self, registry):
        other = DeviceRegistry([binary_sensor("x", SensorType.MOTION)])
        encoder = StateSetEncoder(registry, 60.0).fit(Trace.empty(registry, 0, 60))
        with pytest.raises(ValueError):
            encoder.encode(Trace.empty(other, 0.0, 60.0))

    def test_window_count(self, registry):
        encoder = StateSetEncoder(registry, 60.0)
        assert encoder.num_windows(Trace.empty(registry, 0.0, 150.0)) == 3


def test_batch_encoding_matches_manual(registry):
    """Cross-check the vectorised encoder against a per-window recompute."""
    trace = make_cyclic_trace(registry, hours=1.0)
    encoder = StateSetEncoder(registry, 60.0).fit(trace)
    windowed = encoder.encode(trace)
    for i in (0, 3, 7, 30):
        window = trace.slice(i * 60.0, (i + 1) * 60.0)
        # Binary bit
        times, values = window.events_for("motion_kitchen")
        expected = bool((values > 0).any())
        assert bool(windowed.masks[i] >> 0 & 1) == expected
        # Numeric mean bit
        times, values = window.events_for("temp_kitchen")
        mean_bit = encoder.layout.bits_of_device("temp_kitchen")[2]
        if len(values):
            expected_mean = values.mean() > encoder.value_threshold("temp_kitchen")
            assert bool(windowed.masks[i] >> mean_bit & 1) == expected_mean
        else:
            assert windowed.masks[i] >> mean_bit & 1 == 0
