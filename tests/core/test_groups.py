"""Tests for the group registry (§3.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitLayout, GroupRegistry, StateSetEncoder


def make_registry(registry):
    return GroupRegistry(BitLayout(registry))


class TestInterning:
    def test_same_mask_same_id(self, registry):
        groups = make_registry(registry)
        assert groups.add(0b101) == groups.add(0b101)
        assert len(groups) == 1
        assert groups.count_of(0) == 2

    def test_distinct_masks_distinct_ids(self, registry):
        groups = make_registry(registry)
        a, b = groups.add(0b1), groups.add(0b10)
        assert a != b
        assert groups.mask_of(a) == 0b1
        assert groups.mask_of(b) == 0b10

    def test_lookup(self, registry):
        groups = make_registry(registry)
        gid = groups.add(0b11)
        assert groups.lookup(0b11) == gid
        assert groups.lookup(0b100) is None
        assert 0b11 in groups


class TestCandidates:
    def test_candidates_sorted_nearest_first(self, registry):
        groups = make_registry(registry)
        groups.add(0b0001)
        groups.add(0b0011)
        groups.add(0b1111)
        hits = groups.candidates(0b0001, 2)
        assert [d for _, d in hits] == [0, 1]

    def test_candidates_respects_bound(self, registry):
        groups = make_registry(registry)
        groups.add(0b11111)
        assert groups.candidates(0, 2) == []


class TestCorrelationDegree:
    def test_counts_devices_not_bits(self, registry):
        groups = make_registry(registry)
        layout = groups.layout
        # All three temp bits set: one activated sensor.
        mask = 0
        for bit in layout.bits_of_device("temp_kitchen"):
            mask |= 1 << bit
        groups.add(mask)
        assert groups.correlation_degree() == 1.0

    def test_average_over_unique_groups(self, registry):
        groups = make_registry(registry)
        groups.add(0b01)  # one sensor
        groups.add(0b11)  # two sensors
        groups.add(0b11)  # duplicate must not re-weight
        assert groups.correlation_degree() == pytest.approx(1.5)

    def test_empty_registry_degree_zero(self, registry):
        assert make_registry(registry).correlation_degree() == 0.0


class TestFromWindows:
    def test_sequence_matches_masks(self, registry, cyclic_trace):
        encoder = StateSetEncoder(registry, 60.0).fit(cyclic_trace)
        windowed = encoder.encode(cyclic_trace)
        groups, sequence = GroupRegistry.from_windows(windowed)
        assert len(sequence) == len(windowed)
        for mask, gid in zip(windowed.masks, sequence):
            assert groups.mask_of(gid) == mask
        assert sum(groups.count_of(g) for g in range(len(groups))) == len(windowed)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=60))
def test_interning_is_stable(masks_list):
    from repro.model import DeviceRegistry, SensorType, binary_sensor

    reg = DeviceRegistry(
        [binary_sensor(f"s{i}", SensorType.MOTION) for i in range(5)]
    )
    groups = make_registry(reg)
    first_ids = [groups.add(m) for m in masks_list]
    second_ids = [groups.lookup(m) for m in masks_list]
    assert first_ids == second_ids
    assert len(groups) == len(set(masks_list))
