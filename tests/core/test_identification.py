"""Tests for faulty-device identification (§3.4)."""


from repro.core import (
    BitLayout,
    CorrelationChecker,
    CorrelationResult,
    DiceConfig,
    DeviceWeights,
    GroupRegistry,
    Identifier,
    IdentificationSession,
    ProbableFaultSet,
    TransitionCase,
    TransitionModel,
    TransitionViolation,
)


def build_identifier(registry, masks, sequence=None, config=None):
    config = config or DiceConfig()
    groups = GroupRegistry(BitLayout(registry))
    ids = [groups.add(m) for m in masks]
    transitions = TransitionModel.extract(
        sequence or ids, [frozenset()] * len(sequence or ids)
    )
    checker = CorrelationChecker(groups, config)
    return Identifier(groups, transitions, checker, config), groups


class TestCorrelationIdentification:
    def test_differing_bits_name_the_device(self, registry):
        identifier, groups = build_identifier(registry, [0b11])
        # Observed 0b01: bit 1 (motion_bedroom) missing vs the known group.
        result = CorrelationResult(0b01, None, ((0, 1),))
        probable = identifier.from_correlation_violation(result, None)
        assert probable.devices == frozenset({"motion_bedroom"})

    def test_numeric_bits_map_to_the_sensor(self, registry):
        layout = BitLayout(registry)
        temp_bits = layout.bits_of_device("temp_kitchen")
        known = (1 << temp_bits[0]) | (1 << temp_bits[2])
        identifier, groups = build_identifier(registry, [known])
        result = CorrelationResult(0, None, ((0, 2),))
        probable = identifier.from_correlation_violation(result, None)
        assert probable.devices == frozenset({"temp_kitchen"})

    def test_only_nearest_groups_are_references(self, registry):
        identifier, groups = build_identifier(registry, [0b01, 0b11011])
        result = CorrelationResult(
            0b11, None, ((0, 1), (1, 3))
        )
        probable = identifier.from_correlation_violation(result, None)
        assert probable.reference_groups == (0,)
        assert probable.devices == frozenset({"motion_bedroom"})

    def test_transition_pruning(self, registry):
        # Two candidates at equal distance; only one reachable from prev.
        identifier, groups = build_identifier(
            registry, [0b001, 0b011, 0b101], sequence=[0, 1, 0, 1]
        )
        result = CorrelationResult(0b111, None, ((1, 1), (2, 1)))
        probable = identifier.from_correlation_violation(result, prev_group=0)
        assert probable.reference_groups == (1,)

    def test_empty_probable_set_without_any_groups(self, registry):
        identifier, groups = build_identifier(registry, [])
        result = CorrelationResult(0b1, None, ())
        probable = identifier.from_correlation_violation(result, None)
        assert probable.devices == frozenset()

    def test_fallback_widens_to_nearest(self, registry):
        identifier, groups = build_identifier(registry, [0b11011])
        result = CorrelationResult(0b00001, None, ())
        probable = identifier.from_correlation_violation(result, None)
        assert probable.devices  # found something to compare against


class TestTransitionIdentification:
    def test_g2g_compares_against_successors(self, registry):
        identifier, groups = build_identifier(
            registry, [0b01, 0b11], sequence=[0, 1, 0, 1]
        )
        violation = TransitionViolation(TransitionCase.G2G, 1, 1)
        probable = identifier.from_transition_violations([violation], 0b11, 1)
        # successors(1) == {0}; diff(0b11, 0b01) names motion_bedroom.
        assert probable.devices == frozenset({"motion_bedroom"})

    def test_actuator_violations_blame_the_actuator(self, registry):
        identifier, groups = build_identifier(registry, [0b01])
        violation = TransitionViolation(
            TransitionCase.G2A, 0, 0, actuator="hue_kitchen"
        )
        probable = identifier.from_transition_violations([violation], 0b01, 0)
        assert probable.devices == frozenset({"hue_kitchen"})


class TestIdentificationSession:
    def config(self, **kw):
        return DiceConfig(**kw)

    def test_immediate_convergence_at_numthre(self):
        session = IdentificationSession(
            self.config(), ProbableFaultSet(frozenset({"s1"}))
        )
        assert session.is_done
        assert session.outcome.devices == frozenset({"s1"})
        assert session.outcome.converged

    def test_intersection_narrows(self):
        session = IdentificationSession(
            self.config(), ProbableFaultSet(frozenset({"s1", "s2", "s3"}))
        )
        assert not session.is_done
        session.update(ProbableFaultSet(frozenset({"s1", "s2", "s4"})))
        assert not session.is_done
        outcome = session.update(ProbableFaultSet(frozenset({"s1", "s5"})))
        assert outcome.devices == frozenset({"s1"})
        assert outcome.windows_used == 3

    def test_empty_updates_are_skipped(self):
        session = IdentificationSession(
            self.config(), ProbableFaultSet(frozenset({"s1", "s2"}))
        )
        session.update(ProbableFaultSet(frozenset()))
        assert session.intersection == frozenset({"s1", "s2"})

    def test_contradiction_restarts_from_new_evidence(self):
        session = IdentificationSession(
            self.config(), ProbableFaultSet(frozenset({"s1", "s2"}))
        )
        session.update(ProbableFaultSet(frozenset({"s3", "s4"})))
        assert session.intersection == frozenset({"s3", "s4"})

    def test_max_windows_forces_conclusion(self):
        config = self.config(max_identification_windows=2)
        session = IdentificationSession(
            config, ProbableFaultSet(frozenset({"s1", "s2"}))
        )
        outcome = session.update(ProbableFaultSet(frozenset({"s1", "s2"})))
        assert outcome is not None
        assert not outcome.converged
        assert outcome.devices == frozenset({"s1", "s2"})

    def test_numthre_follows_fault_count(self):
        config = self.config(num_faults=3)
        session = IdentificationSession(
            config, ProbableFaultSet(frozenset({"a", "b", "c"}))
        )
        assert session.is_done  # |set| == numThre == 3

    def test_weighted_early_alarm(self):
        weights = DeviceWeights.for_safety_sensors(["gas"])
        session = IdentificationSession(
            self.config(),
            ProbableFaultSet(frozenset({"gas", "s1", "s2"})),
            weights=weights,
        )
        assert session.is_done
        assert session.outcome.devices == frozenset({"gas"})
        assert session.outcome.weighted_early
