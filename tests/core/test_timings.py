"""StageTimings as a telemetry view: per-window averages, publish, rebuild."""

import pytest

from repro.core import StageTimings
from repro.eval.runner import DatasetResult
from repro.telemetry import NULL_REGISTRY, MetricsRegistry


class TestPerWindow:
    def test_zero_windows_returns_none(self):
        # Nothing was measured — an average would silently fabricate zeros.
        assert StageTimings().per_window() is None
        assert StageTimings(encoding_s=1.0, windows=0).per_window() is None

    def test_averages_over_processed_windows(self):
        timings = StageTimings(
            encoding_s=1.0, correlation_s=2.0, transition_s=0.5,
            identification_s=0.25, windows=4,
        )
        assert timings.per_window() == {
            "encoding": 0.25,
            "correlation_check": 0.5,
            "transition_check": 0.125,
            "identification": 0.0625,
        }

    def test_dataset_result_raises_on_zero_windows(self):
        result = DatasetResult(
            name="empty", num_sensors=0, correlation_degree=0.0, num_groups=0
        )
        with pytest.raises(ValueError, match="empty.*no windows"):
            result.computation_ms_per_window()


class TestRegistryView:
    def _timings(self):
        return StageTimings(
            encoding_s=0.5, correlation_s=1.5, transition_s=0.25,
            identification_s=0.125, windows=10,
            correlation_cache_hits=7, correlation_cache_misses=3,
        )

    def test_publish_then_from_snapshot_round_trips(self):
        reg = MetricsRegistry()
        self._timings().publish(reg)
        back = StageTimings.from_snapshot(reg.snapshot())
        assert back == self._timings()

    def test_publish_accumulates(self):
        reg = MetricsRegistry()
        self._timings().publish(reg)
        self._timings().publish(reg)
        back = StageTimings.from_snapshot(reg.snapshot())
        assert back.windows == 20
        assert back.correlation_s == pytest.approx(3.0)

    def test_publish_to_disabled_registry_is_noop(self):
        self._timings().publish(NULL_REGISTRY)
        assert NULL_REGISTRY.snapshot()["metrics"] == {}

    def test_from_empty_snapshot_is_zero(self):
        empty = StageTimings.from_snapshot({"metrics": {}})
        assert empty == StageTimings()
        assert empty.per_window() is None

    def test_cache_hit_rate(self):
        assert self._timings().correlation_cache_hit_rate == 0.7
        assert StageTimings().correlation_cache_hit_rate == 0.0
