"""Tests for transition extraction (§3.2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransitionMatrix, TransitionModel


class TestTransitionMatrix:
    def test_probability_normalised(self):
        matrix = TransitionMatrix()
        matrix.observe("a", "b")
        matrix.observe("a", "b")
        matrix.observe("a", "c")
        assert matrix.probability("a", "b") == pytest.approx(2 / 3)
        assert matrix.probability("a", "c") == pytest.approx(1 / 3)

    def test_unseen_pairs_are_zero(self):
        matrix = TransitionMatrix()
        matrix.observe("a", "b")
        assert matrix.probability("a", "z") == 0.0
        assert matrix.probability("ghost", "b") == 0.0

    def test_row_total_and_counts(self):
        matrix = TransitionMatrix()
        matrix.observe(1, 2, weight=3)
        assert matrix.row_total(1) == 3
        assert matrix.count(1, 2) == 3
        assert matrix.num_observations == 3

    def test_successors(self):
        matrix = TransitionMatrix()
        matrix.observe("a", "b")
        matrix.observe("a", "c")
        successors = matrix.successors("a")
        assert set(successors) == {"b", "c"}
        assert sum(successors.values()) == pytest.approx(1.0)
        assert matrix.successors("nope") == {}

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            TransitionMatrix().observe("a", "b", weight=0)

    def test_len_counts_entries(self):
        matrix = TransitionMatrix()
        matrix.observe("a", "b")
        matrix.observe("a", "b")
        matrix.observe("b", "c")
        assert len(matrix) == 2


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=100
    )
)
def test_rows_always_normalise(pairs):
    matrix = TransitionMatrix()
    for row, col in pairs:
        matrix.observe(row, col)
    for row in matrix.rows:
        assert sum(matrix.successors(row).values()) == pytest.approx(1.0)


class TestTransitionModel:
    def test_g2g_counts_consecutive_windows(self):
        model = TransitionModel.extract(
            [0, 0, 1, 0], [frozenset()] * 4
        )
        assert model.g2g.count(0, 0) == 1
        assert model.g2g.count(0, 1) == 1
        assert model.g2g.count(1, 0) == 1

    def test_g2a_links_previous_group_to_activation(self):
        activations = [frozenset(), frozenset({"hue"}), frozenset()]
        model = TransitionModel.extract([0, 1, 2], activations)
        assert model.g2a.count(0, "hue") == 1
        assert model.g2a.row_total(1) == 0

    def test_a2g_links_activation_to_next_group(self):
        activations = [frozenset({"hue"}), frozenset(), frozenset()]
        model = TransitionModel.extract([0, 1, 2], activations)
        assert model.a2g.count("hue", 1) == 1
        assert model.a2g.count("hue", 2) == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            TransitionModel.extract([0, 1], [frozenset()])

    def test_merge_accumulates(self):
        a = TransitionModel.extract([0, 1], [frozenset()] * 2)
        b = TransitionModel.extract([0, 1], [frozenset()] * 2)
        a.merge(b)
        assert a.g2g.count(0, 1) == 2

    def test_single_window_has_no_transitions(self):
        model = TransitionModel.extract([7], [frozenset({"hue"})])
        assert model.g2g.num_observations == 0
        assert model.g2a.num_observations == 0
        assert model.a2g.num_observations == 0
