"""Tests for the device-weighting extension (Ch. VI)."""

import pytest

from repro.core import DeviceWeights


class TestDeviceWeights:
    def test_combined_weight(self):
        weights = DeviceWeights()
        weights.set_criticality("gas", 0.6)
        weights.set_failure("gas", 0.5)
        assert weights.weight_of("gas") == pytest.approx(1.1)

    def test_unknown_device_has_zero_weight(self):
        assert DeviceWeights().weight_of("nope") == 0.0

    def test_negative_weight_rejected(self):
        weights = DeviceWeights()
        with pytest.raises(ValueError):
            weights.set_criticality("x", -0.1)
        with pytest.raises(ValueError):
            weights.set_failure("x", -0.1)

    def test_critical_subset(self):
        weights = DeviceWeights.for_safety_sensors(["gas", "flame"])
        weights.set_failure("battery_thing", 0.4)
        subset = weights.critical_subset(["gas", "battery_thing", "other"])
        assert subset == {"gas"}

    def test_alarm_threshold_configurable(self):
        weights = DeviceWeights(alarm_threshold=0.3)
        weights.set_failure("cheap", 0.4)
        assert weights.critical_subset(["cheap"]) == {"cheap"}
