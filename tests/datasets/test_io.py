"""Round-trip tests for CSV trace serialization."""

import numpy as np
import pytest

from repro.datasets import load_dataset, read_registry, read_trace, write_trace


class TestCsvRoundTrip:
    @pytest.fixture(scope="class")
    def sample(self):
        return load_dataset("houseA", seed=2, hours=12.0).trace

    def test_events_roundtrip(self, sample, tmp_path):
        path = str(tmp_path / "trace.csv")
        write_trace(sample, path)
        loaded = read_trace(path)
        assert len(loaded) == len(sample)
        assert np.allclose(loaded.timestamps, sample.timestamps)
        assert np.allclose(loaded.values, sample.values)
        assert loaded.start == sample.start
        assert loaded.end == sample.end

    def test_registry_roundtrip(self, sample, tmp_path):
        path = str(tmp_path / "trace.csv")
        write_trace(sample, path)
        registry = read_registry(str(tmp_path / "trace.devices.csv"))
        assert registry.device_ids == sample.registry.device_ids
        for loaded, original in zip(registry, sample.registry):
            assert loaded.kind == original.kind
            assert loaded.sensor_type == original.sensor_type
            assert loaded.room == original.room

    def test_device_ids_preserved_per_event(self, sample, tmp_path):
        path = str(tmp_path / "trace.csv")
        write_trace(sample, path)
        loaded = read_trace(path)
        original_ids = [sample.registry.device_ids[i] for i in sample.device_indices]
        loaded_ids = [loaded.registry.device_ids[i] for i in loaded.device_indices]
        assert loaded_ids == original_ids

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope,nope\n")
        with pytest.raises(ValueError):
            read_registry(str(path))
