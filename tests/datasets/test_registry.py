"""Tests for dataset loading and the plan_routine helper."""

import pytest

from repro.datasets import (
    FILL,
    dataset_info,
    load_dataset,
    plan_routine,
)
from repro.smarthome import ActivityCatalog, ActivitySpec


class TestLoadDataset:
    def test_load_respects_hours_override(self):
        data = load_dataset("houseA", seed=3, hours=24.0)
        assert data.trace.duration_hours == pytest.approx(24.0)
        assert data.name == "houseA"

    def test_load_is_seeded(self):
        a = load_dataset("houseA", seed=5, hours=24.0)
        b = load_dataset("houseA", seed=5, hours=24.0)
        assert len(a.trace) == len(b.trace)

    def test_default_hours_from_table(self):
        assert dataset_info("houseC").hours == 480

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")


class TestPlanRoutine:
    def catalog(self):
        return ActivityCatalog(
            [
                ActivitySpec("short", "kitchen", (5, 9)),
                ActivitySpec("long", "living_room", FILL),
            ]
        )

    def test_point_activities_get_spaced(self):
        entries = plan_routine(
            self.catalog(),
            [("short", 600, 5), ("short", 601, 5)],
        )
        gap = entries[1].start_minute - entries[0].start_minute
        # >= dur_hi + 2*(j1+j2) + margin = 9 + 20 + 3
        assert gap >= 32

    def test_fill_activities_not_spaced(self):
        entries = plan_routine(
            self.catalog(),
            [("long", 600, 5), ("short", 610, 5)],
        )
        assert entries[1].start_minute == 610

    def test_skippable_chain_constrains_transitively(self):
        entries = plan_routine(
            self.catalog(),
            [("short", 600, 2), ("short", 640, 2, 0.5), ("short", 650, 2)],
        )
        # The third entry must clear the first one too (the middle may be
        # skipped on any given day).
        assert entries[2].start_minute >= 600 + 9 + 2 * (2 + 2) + 3

    def test_day_overflow_rejected(self):
        with pytest.raises(ValueError):
            plan_routine(
                self.catalog(),
                [("short", 1430, 5), ("short", 1439, 5)],
            )
