"""Every dataset spec must match its Table 4.1 row exactly."""

import pytest

from repro.datasets import ALL_NAMES, DATASETS, build_spec, dataset_info


@pytest.mark.parametrize("name", ALL_NAMES)
class TestTable41:
    def test_census_matches(self, name):
        info = dataset_info(name)
        spec = build_spec(name)
        assert spec.registry.census() == (
            info.binary_sensors,
            info.numeric_sensors,
            info.actuators,
        )

    def test_activity_count_matches(self, name):
        info = dataset_info(name)
        spec = build_spec(name)
        assert spec.activity_count() == info.activities

    def test_resident_count_matches(self, name):
        info = dataset_info(name)
        spec = build_spec(name)
        assert spec.num_residents == info.residents

    def test_devices_have_known_rooms(self, name):
        spec = build_spec(name)
        for device in spec.registry:
            assert not device.room or device.room in spec.floorplan


class TestTableContents:
    def test_ten_datasets(self):
        assert len(DATASETS) == 10

    def test_table_41_durations(self):
        hours = {name: info.hours for name, info in DATASETS.items()}
        assert hours["houseA"] == 576
        assert hours["houseB"] == 648
        assert hours["houseC"] == 480
        assert hours["twor"] == 1104
        assert hours["hh102"] == 1488
        assert hours["D_houseA"] == 600
        assert hours["D_hh102"] == 1500

    def test_testbed_census_is_shared(self):
        for name in ("D_houseA", "D_houseB", "D_houseC", "D_twor", "D_hh102"):
            info = dataset_info(name)
            assert (info.binary_sensors, info.numeric_sensors, info.actuators) == (
                6,
                31,
                8,
            )

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_info("houseZ")


class TestRoutineDiscipline:
    """The point/fill timing rules that keep contexts learnable."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_skip_probabilities_capped(self, name):
        spec = build_spec(name)
        for routine in spec.routines:
            for entry in routine.entries:
                assert entry.skip_probability <= 0.7

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_entries_fit_the_day(self, name):
        spec = build_spec(name)
        for routine in spec.routines:
            for entry in routine.entries:
                assert 0 <= entry.start_minute < 24 * 60
