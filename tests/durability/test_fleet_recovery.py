"""Fleet crash recovery: per-home journals, resharding, at-least-once.

Journals are keyed by home, not shard, so a fleet may come back with a
different shard count and still replay every home's tail exactly —
the chaos batch randomizes shard layouts across the crash to prove it.
"""

import pytest

from repro.durability import DURABILITY_SIDECAR, DurableFleetGateway
from repro.streaming import CheckpointError
from repro.faults import (
    baseline_fleet,
    build_chaos_fleet,
    run_chaos_fleet,
    run_fleet_trial,
)


@pytest.fixture(scope="module")
def fleet():
    deployments, merged = build_chaos_fleet(7, num_homes=3)
    return deployments, merged, baseline_fleet(deployments, merged)


class TestChaosBatch:
    def test_randomized_kills_across_shard_layouts(self, tmp_path):
        report = run_chaos_fleet(
            str(tmp_path),
            fleets=2,
            kills_per_fleet=4,
            num_homes=3,
            seed=0,
            shard_choices=(1, 2, 4),
        )
        summary = report.summary()
        assert summary["trials"] == 8
        assert report.ok, summary
        # At least one trial must have actually changed shard layout
        # across the crash (reshard-on-restore).
        assert any(t.shards_before != t.shards_after for t in report.trials)


class TestTargetedTrials:
    @pytest.mark.parametrize("shards_after", [1, 2, 4])
    def test_reshard_on_restore(self, fleet, tmp_path, shards_after):
        deployments, merged, expected = fleet
        result = run_fleet_trial(
            deployments,
            merged,
            expected,
            str(tmp_path),
            kill_index=len(merged) // 2,
            checkpoint_index=len(merged) // 4,
            shards_before=2,
            shards_after=shards_after,
        )
        assert result.ok, result
        assert result.checkpointed

    def test_torn_home_journal(self, fleet, tmp_path):
        deployments, merged, expected = fleet
        result = run_fleet_trial(
            deployments,
            merged,
            expected,
            str(tmp_path),
            kill_index=len(merged) // 2,
            torn=True,
        )
        assert result.ok, result
        assert result.torn

    def test_dead_letters_account_for_every_alert(self, fleet, tmp_path):
        deployments, merged, expected = fleet
        result = run_fleet_trial(
            deployments,
            merged,
            expected,
            str(tmp_path),
            kill_index=len(merged) // 2,
            flaky_failures=99,
            max_attempts=2,
        )
        assert result.parity
        assert result.delivery_ok
        assert result.delivered == 0
        assert result.dead_letters == sum(len(a) for a in expected.values())


class TestRecoverGuards:
    def test_recover_without_checkpoint_or_gateway_fails(self, tmp_path):
        with pytest.raises(CheckpointError, match="no fleet checkpoint"):
            DurableFleetGateway.recover({}, tmp_path / "journals")

    def test_sidecar_written_with_checkpoint(self, fleet, tmp_path):
        import json
        import os

        from repro.durability import DURABILITY_SCHEMA
        from repro.faults.crash import _fresh_fleet

        deployments, merged, _ = fleet
        detectors = {dep.home_id: dep.fit_detector() for dep in deployments}
        durable = DurableFleetGateway(
            _fresh_fleet(deployments, detectors, 2), tmp_path / "journals"
        )
        durable.dispatch(merged[: len(merged) // 4])
        durable.save_checkpoint(tmp_path / "ckpt")
        durable.close()
        sidecar_path = os.path.join(tmp_path, "ckpt", DURABILITY_SIDECAR)
        with open(sidecar_path, "r", encoding="utf-8") as handle:
            sidecar = json.load(handle)
        assert sidecar["schema"] == DURABILITY_SCHEMA
        assert set(sidecar["journal_epochs"]) == {d.home_id for d in deployments}

    def test_health_reports_per_home_epochs(self, fleet, tmp_path):
        from repro.faults.crash import _fresh_fleet

        deployments, merged, _ = fleet
        detectors = {dep.home_id: dep.fit_detector() for dep in deployments}
        durable = DurableFleetGateway(
            _fresh_fleet(deployments, detectors, 2), tmp_path / "journals"
        )
        durable.dispatch(merged[:50])
        report = durable.health()
        assert set(report["durability"]["journal_epochs"]) == {
            d.home_id for d in deployments
        }
        durable.close()
