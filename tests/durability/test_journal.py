"""The write-ahead journal: framing, fsync policy, rotation, torn tails.

The journal's one job is that what was appended is what replays — byte
round trips (including non-finite floats from corrupt pipe values),
epoch bookkeeping that survives restarts, and CRC detection of the
partial record a crash mid-write leaves behind.
"""

import math
import os
import random

import pytest

from repro.durability import (
    MAX_RECORD_BYTES,
    EventJournal,
    JournalError,
    encode_event_frame,
    encode_record,
    event_to_record,
    frame_payload,
    list_segments,
    read_segment,
    record_to_event,
    replay_records,
    segment_name,
)
from repro.model import Event
from repro.telemetry import MetricsRegistry


def _records(path):
    records, torn = read_segment(path)
    assert not torn
    return records


class TestFraming:
    def test_round_trip(self, tmp_path):
        journal = EventJournal(tmp_path)
        records = [
            {"type": "event", "t": 1.5, "d": "motion_kitchen", "v": 1.0},
            {"type": "event", "t": 2.25, "d": "temp", "v": -273.15},
            {"type": "mark", "note": "unicode éè€"},
        ]
        for record in records:
            journal.append(record)
        journal.close()
        assert _records(journal.current_segment_path) == records

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf"), 1e-310, 1e308, -0.0]
    )
    def test_non_finite_and_extreme_floats_round_trip(self, tmp_path, value):
        # Corrupt pipe faults produce NaN/inf values; the journal must
        # carry them to the guard (which is what drops them) unchanged.
        journal = EventJournal(tmp_path)
        journal.append(event_to_record(Event(10.0, "d", value)))
        journal.close()
        (record,) = _records(journal.current_segment_path)
        out = record_to_event(record).value
        if math.isnan(value):
            assert math.isnan(out)
        else:
            assert out == value

    def test_fast_event_frame_is_byte_identical(self):
        rng = random.Random(11)
        events = [
            Event(0.0, "motion_kitchen", 1.0),
            Event(1234.5678, 'temp_röom "x"', -3.25),
            Event(float("nan"), "d", float("inf")),
            Event(float("-inf"), "d", float("nan")),
            Event(-0.0, "d", 0.1 + 0.2),
        ] + [
            Event(rng.uniform(-1e9, 1e9), f"dev_{rng.randrange(8)}", rng.uniform(-1e6, 1e6))
            for _ in range(200)
        ]
        for event in events:
            assert encode_event_frame(event) == encode_record(event_to_record(event))

    def test_oversize_record_rejected(self):
        with pytest.raises(JournalError, match="exceeds"):
            frame_payload(b"x" * (MAX_RECORD_BYTES + 1))

    def test_append_frame_equals_append(self, tmp_path):
        a = EventJournal(tmp_path / "a")
        b = EventJournal(tmp_path / "b")
        event = Event(5.0, "motion_kitchen", 1.0)
        a.append(event_to_record(event))
        b.append_frame(encode_event_frame(event))
        a.close(), b.close()
        assert (
            open(a.current_segment_path, "rb").read()
            == open(b.current_segment_path, "rb").read()
        )


class TestPolicy:
    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            EventJournal(tmp_path, fsync="sometimes")

    def test_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_interval"):
            EventJournal(tmp_path, fsync="interval", fsync_interval=0)

    @pytest.mark.parametrize("fsync", ["never", "interval", "always"])
    def test_policies_all_persist(self, tmp_path, fsync):
        journal = EventJournal(tmp_path / fsync, fsync=fsync, fsync_interval=2)
        for i in range(5):
            journal.append({"i": i})
        journal.close()
        assert _records(journal.current_segment_path) == [{"i": i} for i in range(5)]


class TestRotation:
    def test_rotate_and_truncate(self, tmp_path):
        journal = EventJournal(tmp_path)
        journal.append({"epoch": 0})
        journal.rotate(1)
        journal.append({"epoch": 1})
        assert [e for e, _ in journal.segments()] == [0, 1]
        removed = journal.truncate_through(0)
        assert removed == 1
        assert [e for e, _ in journal.segments()] == [1]
        journal.close()

    def test_rotate_persists_epoch_without_appends(self, tmp_path):
        # The checkpoint cycle is rotate(e+1) + truncate_through(e); if the
        # fresh segment were created lazily on first append, a crash right
        # after the cycle would leave an empty directory and the next life
        # would restart at the superseded epoch 0 — whose appends a later
        # recovery (after_epoch from the checkpoint) silently skips.
        journal = EventJournal(tmp_path)
        journal.append({"i": 0})
        journal.rotate(1)
        journal.truncate_through(0)
        journal.close()
        assert os.path.exists(tmp_path / segment_name(1))
        reopened = EventJournal(tmp_path)
        assert reopened.epoch == 1
        reopened.close()

    def test_rotate_backwards_rejected(self, tmp_path):
        journal = EventJournal(tmp_path)
        journal.append({"i": 0})
        journal.rotate(3)
        with pytest.raises(ValueError, match="backwards"):
            journal.rotate(2)
        journal.close()

    def test_replay_respects_after_epoch(self, tmp_path):
        journal = EventJournal(tmp_path)
        journal.append({"epoch": 0})
        journal.rotate(1)
        journal.append({"epoch": 1})
        journal.rotate(2)
        journal.append({"epoch": 2})
        journal.close()
        records, torn = replay_records(tmp_path, after_epoch=0)
        assert torn == 0
        assert records == [{"epoch": 1}, {"epoch": 2}]

    def test_counters(self, tmp_path):
        registry = MetricsRegistry()
        journal = EventJournal(tmp_path, metrics=registry)
        journal.append({"i": 0})
        journal.append({"i": 1})
        journal.rotate(1)
        journal.truncate_through(0)
        journal.close()
        snapshot = registry.snapshot()["metrics"]

        def total(name):
            return sum(row["value"] for row in snapshot[name]["series"])

        assert total("dice_journal_appends_total") == 2
        assert total("dice_journal_rotations_total") == 1
        assert total("dice_journal_truncated_segments_total") == 1


class TestTornTail:
    def _tear(self, path, cut):
        size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.truncate(size - cut)

    def test_torn_tail_detected_and_discarded(self, tmp_path):
        journal = EventJournal(tmp_path)
        frames = [event_to_record(Event(float(i), "d", 1.0)) for i in range(4)]
        for record in frames:
            journal.append(record)
        journal.close()
        last_frame = len(encode_record(frames[-1]))
        for cut in (1, last_frame // 2, last_frame - 1):
            journal2 = EventJournal(tmp_path / f"cut{cut}")
            for record in frames:
                journal2.append(record)
            journal2.close()
            self._tear(journal2.current_segment_path, cut)
            records, torn = read_segment(journal2.current_segment_path)
            assert torn
            assert records == frames[:-1]

    def test_torn_tail_counted_in_replay(self, tmp_path):
        registry = MetricsRegistry()
        journal = EventJournal(tmp_path)
        journal.append({"i": 0})
        journal.append({"i": 1})
        journal.close()
        self._tear(journal.current_segment_path, 3)
        records, torn = replay_records(tmp_path, metrics=registry)
        assert records == [{"i": 0}]
        assert torn == 1
        entry = registry.snapshot()["metrics"]["dice_journal_torn_records_total"]
        assert sum(row["value"] for row in entry["series"]) == 1

    def test_torn_record_in_non_final_segment_raises(self, tmp_path):
        # A torn record is only legal where a crash can land: the newest
        # segment.  Anywhere earlier means history was lost before later
        # segments were written — replaying across the gap would silently
        # reorder the stream, so it must refuse.
        journal = EventJournal(tmp_path)
        journal.append({"epoch": 0})
        journal.sync()
        self._tear(journal.current_segment_path, 2)
        journal.rotate(1)
        journal.append({"epoch": 1})
        journal.close()
        with pytest.raises(JournalError, match="not the newest"):
            replay_records(tmp_path)

    def test_garbage_length_field_is_torn(self, tmp_path):
        path = tmp_path / segment_name(0)
        with open(path, "wb") as handle:
            handle.write(encode_record({"ok": 1}))
            handle.write(b"\xff\xff\xff\xff\x00\x00\x00\x00garbage")
        records, torn = read_segment(path)
        assert records == [{"ok": 1}]
        assert torn

    def test_crc_mismatch_is_torn(self, tmp_path):
        path = tmp_path / segment_name(0)
        frame = bytearray(encode_record({"ok": 1}))
        frame[-1] ^= 0xFF  # flip one payload bit: CRC must catch it
        with open(path, "wb") as handle:
            handle.write(bytes(frame))
        records, torn = read_segment(path)
        assert records == []
        assert torn


def test_list_segments_orders_and_filters(tmp_path):
    for epoch in (3, 0, 12):
        (tmp_path / segment_name(epoch)).write_bytes(b"")
    (tmp_path / "not-a-segment.wal").write_bytes(b"")
    (tmp_path / "journal-0001.wal").write_bytes(b"")  # wrong width
    assert [e for e, _ in list_segments(tmp_path)] == [0, 3, 12]
    assert list_segments(tmp_path / "missing") == []
