"""The alert outbox: journal-then-deliver, retries, dedup, dead letters.

At-least-once means exactly: every offered alert ends up either acked as
delivered or in the dead-letter file, never silently dropped — across
flaky sinks, retry exhaustion, duplicate offers and process restarts.
"""

import json

import pytest

from repro.durability import (
    AlertOutbox,
    CallbackSink,
    FileSink,
    FlakySink,
    alert_record,
)
from repro.streaming import Alert
from repro.telemetry import MetricsRegistry


def _alert(time=100.0, kind="detection", devices=("motion_kitchen",)):
    return Alert(kind=kind, time=time, check="order", devices=frozenset(devices))


def _record(seq=1, **kwargs):
    return alert_record("home-0000", seq, _alert(**kwargs))


class RecordingSleep:
    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


class TestAlertRecord:
    def test_id_is_deterministic(self):
        assert _record()["id"] == _record()["id"]

    def test_id_covers_content_and_sequence(self):
        base = _record()["id"]
        assert _record(seq=2)["id"] != base
        assert _record(time=101.0)["id"] != base
        assert _record(devices=("motion_bedroom",))["id"] != base
        assert alert_record("home-0001", 1, _alert())["id"] != base


class TestDelivery:
    def test_file_sink_receives_every_alert(self, tmp_path):
        out_path = tmp_path / "alerts.jsonl"
        outbox = AlertOutbox(tmp_path / "outbox", FileSink(out_path))
        records = [_record(seq=i) for i in range(1, 4)]
        for record in records:
            assert outbox.offer(record)
        stats = outbox.deliver_pending()
        assert stats == {"delivered": 3, "dead": 0}
        lines = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert [line["id"] for line in lines] == [r["id"] for r in records]
        assert outbox.pending == []

    def test_flaky_sink_retries_with_backoff(self, tmp_path):
        sleep = RecordingSleep()
        sink = FlakySink(FileSink(tmp_path / "alerts.jsonl"), failures=2)
        outbox = AlertOutbox(
            tmp_path / "outbox",
            sink,
            max_attempts=4,
            base_delay=0.1,
            jitter=0.0,
            sleep=sleep,
        )
        outbox.offer(_record())
        assert outbox.deliver_pending() == {"delivered": 1, "dead": 0}
        # two failures → two backoff sleeps, exponentially spaced
        assert sleep.delays == [0.1, 0.2]
        assert len(sink.delivered) == 1

    def test_backoff_is_capped_and_jittered(self, tmp_path):
        outbox = AlertOutbox(
            tmp_path / "outbox",
            FileSink(tmp_path / "alerts.jsonl"),
            base_delay=1.0,
            max_delay=2.0,
            jitter=0.5,
        )
        for attempt in range(1, 8):
            delay = outbox._backoff(attempt)
            assert delay <= 2.0 * 1.5
            assert delay >= min(2.0, 1.0 * 2 ** (attempt - 1))

    def test_exhaustion_dead_letters(self, tmp_path):
        registry = MetricsRegistry()
        sink = FlakySink(FileSink(tmp_path / "alerts.jsonl"), failures=99)
        outbox = AlertOutbox(
            tmp_path / "outbox",
            sink,
            max_attempts=3,
            sleep=lambda _s: None,
            metrics=registry,
        )
        record = _record()
        outbox.offer(record)
        assert outbox.deliver_pending() == {"delivered": 0, "dead": 1}
        (entry,) = outbox.dead_letters()
        assert entry["record"]["id"] == record["id"]
        assert entry["attempts"] == 3
        assert "flaky sink" in entry["error"]
        # dead alerts are acked (as dead) so they stop blocking the queue
        assert outbox.pending == []
        assert outbox.delivered_ids() == []
        snapshot = registry.snapshot()["metrics"]
        assert (
            sum(r["value"] for r in snapshot["dice_outbox_dead_letter_total"]["series"])
            == 1
        )

    def test_duplicate_offers_suppressed(self, tmp_path):
        delivered = []
        outbox = AlertOutbox(tmp_path / "outbox", CallbackSink(delivered.append))
        record = _record()
        assert outbox.offer(record) is True
        assert outbox.offer(record) is False  # a replay re-offering history
        outbox.deliver_pending()
        assert len(delivered) == 1

    def test_invalid_max_attempts_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_attempts"):
            AlertOutbox(tmp_path, FileSink(tmp_path / "a"), max_attempts=0)

    def test_jitter_seed_makes_backoff_deterministic(self, tmp_path):
        """Chaos trials pin the retry schedule byte-for-byte: the same
        jitter_seed replays identical jittered delays, a different seed
        diverges (so trials don't accidentally share a schedule)."""

        def schedule(directory, seed):
            sleep = RecordingSleep()
            sink = FlakySink(FileSink(directory / "alerts.jsonl"), failures=3)
            outbox = AlertOutbox(
                directory / "outbox",
                sink,
                max_attempts=5,
                base_delay=0.1,
                jitter=0.5,
                sleep=sleep,
                jitter_seed=seed,
            )
            outbox.offer(_record())
            outbox.deliver_pending()
            return sleep.delays

        first = schedule(tmp_path / "a", seed=7)
        assert len(first) == 3
        assert any(delay > base for delay, base in zip(first, (0.1, 0.2, 0.4)))
        assert schedule(tmp_path / "b", seed=7) == first
        assert schedule(tmp_path / "c", seed=8) != first


class TestRestart:
    def test_unacked_alerts_redeliver_after_restart(self, tmp_path):
        # Crash between journal and delivery: the next incarnation of the
        # outbox must re-send exactly the unacked alerts.
        outbox_dir = tmp_path / "outbox"
        delivered = []
        first = AlertOutbox(outbox_dir, CallbackSink(delivered.append))
        acked_record, lost_record = _record(seq=1), _record(seq=2)
        first.offer(acked_record)
        first.deliver_pending()  # seq 1 delivered and acked
        first.offer(lost_record)  # seq 2 journaled, then "crash"

        second = AlertOutbox(outbox_dir, CallbackSink(delivered.append))
        assert [r["id"] for r in second.pending] == [lost_record["id"]]
        assert second.deliver_pending() == {"delivered": 1, "dead": 0}
        assert [r["id"] for r in delivered] == [acked_record["id"], lost_record["id"]]
        assert set(second.delivered_ids()) == {acked_record["id"], lost_record["id"]}

    def test_restart_does_not_resend_acked(self, tmp_path):
        outbox_dir = tmp_path / "outbox"
        delivered = []
        first = AlertOutbox(outbox_dir, CallbackSink(delivered.append))
        record = _record()
        first.offer(record)
        first.deliver_pending()

        second = AlertOutbox(outbox_dir, CallbackSink(delivered.append))
        assert second.pending == []
        assert second.deliver_pending() == {"delivered": 0, "dead": 0}
        assert len(delivered) == 1
