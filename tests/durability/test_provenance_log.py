"""ProvenanceLog: append-only archive, dedup, torn tails, prefix lookup."""

import os

from repro.durability import ProvenanceLog
from repro.durability.provenance import (
    PROVENANCE_DEDUPED_TOTAL,
    PROVENANCE_RECORDS_TOTAL,
    PROVENANCE_WAL,
)
from repro.telemetry import MetricsRegistry


def _record(seq: int, **extra) -> dict:
    return {
        "schema": "dice-provenance/1",
        "id": f"{seq:032x}",
        "alert": {"home": "houseA", "seq": seq, "kind": "detection"},
        "windows": [],
        **extra,
    }


class TestAppend:
    def test_append_then_read_back(self, tmp_path):
        log = ProvenanceLog(tmp_path)
        assert log.append(_record(1)) is True
        assert log.append(_record(2)) is True
        assert len(log) == 2
        assert _record(1)["id"] in log
        assert log.records() == [_record(1), _record(2)]
        assert os.path.exists(os.path.join(tmp_path, PROVENANCE_WAL))

    def test_duplicate_ids_are_suppressed(self, tmp_path):
        metrics = MetricsRegistry()
        log = ProvenanceLog(tmp_path, metrics=metrics)
        assert log.append(_record(1)) is True
        assert log.append(_record(1)) is False
        assert len(log) == 1
        assert log.records() == [_record(1)]
        snap = metrics.snapshot()["metrics"]
        assert snap[PROVENANCE_RECORDS_TOTAL]["series"][0]["value"] == 1
        assert snap[PROVENANCE_DEDUPED_TOTAL]["series"][0]["value"] == 1

    def test_append_many_counts_fresh_records(self, tmp_path):
        log = ProvenanceLog(tmp_path)
        assert log.append_many([_record(1), _record(2), _record(1)]) == 2
        assert len(log) == 2

    def test_reopen_remembers_archived_ids(self, tmp_path):
        ProvenanceLog(tmp_path).append_many([_record(1), _record(2)])
        reopened = ProvenanceLog(tmp_path)
        assert len(reopened) == 2
        assert reopened.append(_record(2)) is False
        assert reopened.append(_record(3)) is True
        assert [r["alert"]["seq"] for r in reopened.records()] == [1, 2, 3]


class TestFind:
    def test_find_prefix_prefers_newest(self, tmp_path):
        log = ProvenanceLog(tmp_path)
        log.append(_record(1, note="old"))
        log.append(_record(2))
        # Both ids share the long zero prefix; the newest wins.
        assert log.find("000000")["alert"]["seq"] == 2
        assert log.find(_record(1)["id"])["note"] == "old"
        assert log.find("ffff") is None

    def test_empty_log_finds_nothing(self, tmp_path):
        log = ProvenanceLog(tmp_path)
        assert log.records() == []
        assert log.find("") is None


class TestTornTail:
    def test_torn_tail_loses_only_the_last_record(self, tmp_path):
        log = ProvenanceLog(tmp_path)
        log.append_many([_record(1), _record(2), _record(3)])
        # Crash mid-append: shear a few bytes off the final frame.
        with open(log.path, "r+b") as fh:
            fh.truncate(os.path.getsize(log.path) - 5)
        reopened = ProvenanceLog(tmp_path)
        assert [r["alert"]["seq"] for r in reopened.records()] == [1, 2]
        # The torn record was never indexed: a replay re-appends it whole.
        assert reopened.append(_record(3)) is True
        assert [r["alert"]["seq"] for r in reopened.records()] == [1, 2, 3]
