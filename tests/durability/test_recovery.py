"""Standalone crash recovery: checkpoint + journal tail == uninterrupted.

The chaos harness is the test: seeded deployments, randomized kill
points (some mid-journal-write), recovery, byte-level alert-stream
comparison.  The targeted tests underneath pin the individual failure
modes — torn tails, crash-before-first-checkpoint, counter exactness —
so a chaos regression localizes.
"""

import numpy as np
import pytest

from repro.durability import DurableOnlineDice
from repro.faults import (
    ALL_FAULT_TYPES,
    FaultType,
    baseline_standalone,
    build_chaos_deployment,
    canonical_alerts,
    run_chaos_standalone,
    run_standalone_trial,
    standalone_oracle,
    tear_final_record,
)
from repro.faults.crash import ALERTS_TOTAL, LATENESS_SECONDS, POLICY, _counter_total


@pytest.fixture(scope="module")
def deployment():
    return build_chaos_deployment(42)


@pytest.fixture(scope="module")
def expected(deployment):
    return baseline_standalone(deployment)


class TestChaosBatch:
    def test_25_seeded_kill_points_all_recover(self, tmp_path):
        report = run_chaos_standalone(
            str(tmp_path), deployments=5, kills_per_deployment=5, seed=0
        )
        summary = report.summary()
        assert summary["trials"] == 25
        assert report.ok, summary
        # The batch must actually exercise the interesting regimes.
        assert summary["torn_trials"] >= 3
        assert summary["checkpointed_trials"] >= 5
        assert summary["delivered"] > 0
        assert summary["dead_letters"] == 0


class TestFaultClasses:
    """Chaos victims can fail in any Ni et al. rendering, not just fail-stop."""

    def _victim_events_after_onset(self, dep):
        return [
            e
            for e in dep.events
            if e.device_id == dep.fault_device and e.timestamp >= dep.fault_time
        ]

    def test_fail_stop_victim_goes_silent(self, deployment):
        assert deployment.fault_class is FaultType.FAIL_STOP
        assert not self._victim_events_after_onset(deployment)

    @pytest.mark.parametrize(
        "fault_class",
        [t for t in ALL_FAULT_TYPES if t is not FaultType.FAIL_STOP],
        ids=lambda t: t.value,
    )
    def test_non_fail_stop_victim_keeps_reporting(self, fault_class):
        dep = build_chaos_deployment(42, fault_class=fault_class)
        assert dep.fault_class is fault_class
        assert self._victim_events_after_onset(dep)

    def test_fail_stop_build_unchanged_by_refactor(self, deployment):
        # The explicit-kwarg path must reproduce the historical seed-42
        # deployment byte for byte (golden chaos seeds depend on it).
        rebuilt = build_chaos_deployment(42, fault_class=FaultType.FAIL_STOP)
        assert rebuilt.fault_device == deployment.fault_device
        assert rebuilt.fault_time == deployment.fault_time
        assert [
            (e.timestamp, e.device_id, e.value) for e in rebuilt.events
        ] == [(e.timestamp, e.device_id, e.value) for e in deployment.events]

    def test_stuck_at_deployment_recovers_with_parity(self, tmp_path):
        dep = build_chaos_deployment(42, fault_class=FaultType.STUCK_AT)
        expected = baseline_standalone(dep)
        result = run_standalone_trial(
            dep,
            expected,
            str(tmp_path),
            kill_index=len(dep.events) // 2,
            checkpoint_index=len(dep.events) // 3,
        )
        assert result.ok
        assert result.checkpointed


class TestProvenanceParity:
    """Evidence records survive the crash byte-for-byte (or regenerate so)."""

    @pytest.fixture(scope="class")
    def oracle(self, deployment):
        return standalone_oracle(deployment)

    def test_recovered_archive_matches_oracle_bytes(
        self, deployment, oracle, tmp_path
    ):
        expected_alerts, expected_provenance = oracle
        assert expected_provenance, "the chaos scenario must produce evidence"
        n = len(deployment.events)
        result = run_standalone_trial(
            deployment,
            expected_alerts,
            str(tmp_path),
            kill_index=(3 * n) // 4,
            checkpoint_index=n // 2,
            expected_provenance=expected_provenance,
        )
        assert result.provenance_parity
        assert result.ok

    def test_parity_detects_a_tampered_record(self, deployment, oracle, tmp_path):
        expected_alerts, expected_provenance = oracle
        tampered = dict(expected_provenance)
        victim = next(iter(tampered))
        tampered[victim] = tampered[victim] + b"x"
        result = run_standalone_trial(
            deployment,
            expected_alerts,
            str(tmp_path),
            kill_index=len(deployment.events) // 2,
            expected_provenance=tampered,
        )
        assert not result.provenance_parity
        assert not result.ok

    def test_oracle_ids_match_the_delivered_alert_ids(self, deployment, oracle):
        # Shared id scheme end to end: every id in the provenance oracle is
        # the trace id the outbox would stamp on the delivered alert.
        from repro.durability import alert_record

        expected_alerts, expected_provenance = oracle
        outbox_ids = {
            alert_record(deployment.home_id, seq, alert)["id"]
            for seq, alert in enumerate(expected_alerts, start=1)
        }
        assert set(expected_provenance) <= outbox_ids


class TestTargetedTrials:
    def test_crash_without_checkpoint(self, deployment, expected, tmp_path):
        result = run_standalone_trial(
            deployment,
            expected,
            str(tmp_path),
            kill_index=len(deployment.events) // 2,
        )
        assert result.ok
        assert not result.checkpointed

    def test_crash_after_checkpoint(self, deployment, expected, tmp_path):
        n = len(deployment.events)
        result = run_standalone_trial(
            deployment,
            expected,
            str(tmp_path),
            kill_index=(3 * n) // 4,
            checkpoint_index=n // 2,
        )
        assert result.ok
        assert result.checkpointed

    def test_torn_final_record_is_discarded_and_refed(self, deployment, expected, tmp_path):
        result = run_standalone_trial(
            deployment,
            expected,
            str(tmp_path),
            kill_index=len(deployment.events) // 2,
            torn=True,
        )
        assert result.ok
        assert result.torn

    @pytest.mark.parametrize("fsync", ["interval", "always"])
    def test_stricter_fsync_policies_recover_too(
        self, deployment, expected, tmp_path, fsync
    ):
        result = run_standalone_trial(
            deployment,
            expected,
            str(tmp_path),
            kill_index=len(deployment.events) // 3,
            fsync=fsync,
        )
        assert result.ok

    def test_retry_exhaustion_dead_letters_instead_of_losing(
        self, deployment, expected, tmp_path
    ):
        # Sink worse than the attempt budget: nothing is delivered, but
        # every expected alert is accounted for in the dead-letter file.
        result = run_standalone_trial(
            deployment,
            expected,
            str(tmp_path),
            kill_index=len(deployment.events) // 2,
            flaky_failures=99,
            max_attempts=2,
        )
        assert result.parity
        assert result.delivery_ok
        assert result.delivered == 0
        assert result.dead_letters == len(expected)


class TestDurableRuntime:
    def test_recover_counters_match_uninterrupted(self, deployment, expected, tmp_path):
        events = deployment.events
        cut = len(events) // 2
        durable = DurableOnlineDice(
            deployment.fit_detector(),
            tmp_path / "journal",
            start=deployment.split,
            lateness_seconds=LATENESS_SECONDS,
            policy=POLICY,
        )
        durable.ingest_many(events[:cut])
        durable.save_checkpoint(tmp_path / "ckpt.json")
        at_ckpt = _counter_total(durable.metrics, ALERTS_TOTAL)
        prefix = list(durable.alerts)
        durable.ingest_many(events[cut : cut + 5])
        durable.close()

        recovered, replayed = DurableOnlineDice.recover(
            deployment.fit_detector(),
            tmp_path / "journal",
            checkpoint_path=tmp_path / "ckpt.json",
            start=deployment.split,
            lateness_seconds=LATENESS_SECONDS,
            policy=POLICY,
        )
        assert _counter_total(recovered.metrics, ALERTS_TOTAL) >= at_ckpt
        recovered.ingest_many(events[cut + 5 :])
        recovered.finish_stream(deployment.end)
        recovered.close()
        assert canonical_alerts(prefix + recovered.alerts) == canonical_alerts(expected)
        assert _counter_total(recovered.metrics, ALERTS_TOTAL) == float(len(expected))

    def test_fresh_runtime_over_dirty_journal_rotates(self, deployment, tmp_path):
        first = DurableOnlineDice(
            deployment.fit_detector(),
            tmp_path / "journal",
            start=deployment.split,
        )
        first.ingest_many(deployment.events[:10])
        first.close()
        epoch_before = first.journal.epoch
        # A *fresh* (non-recovery) runtime must never extend a segment
        # from an earlier life.
        second = DurableOnlineDice(
            deployment.fit_detector(),
            tmp_path / "journal",
            start=deployment.split,
        )
        assert second.journal.epoch == epoch_before + 1
        second.close()

    def test_tear_helper_cuts_partial_frame(self, deployment, tmp_path):
        durable = DurableOnlineDice(
            deployment.fit_detector(),
            tmp_path / "journal",
            start=deployment.split,
        )
        durable.ingest_many(deployment.events[:10])
        durable.close()
        cut = tear_final_record(
            str(tmp_path / "journal"),
            deployment.events[9],
            np.random.default_rng(0),
        )
        assert cut > 0
        # Recovery discards exactly the torn record and replays the rest.
        recovered, _ = DurableOnlineDice.recover(
            deployment.fit_detector(),
            tmp_path / "journal",
            start=deployment.split,
        )
        replayed = _counter_total(
            recovered.metrics, "dice_journal_replayed_total"
        )
        torn = _counter_total(recovered.metrics, "dice_journal_torn_records_total")
        assert replayed == 9.0
        assert torn == 1.0
        recovered.close()

    def test_health_reports_durability_section(self, deployment, tmp_path):
        durable = DurableOnlineDice(
            deployment.fit_detector(),
            tmp_path / "journal",
            start=deployment.split,
        )
        durable.ingest_many(deployment.events[:5])
        report = durable.health()
        assert report["durability"]["journal_epoch"] == durable.journal.epoch
        assert report["durability"]["alert_seq"] == durable.alert_seq
        durable.close()
