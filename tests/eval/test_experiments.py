"""Small-scale smoke tests for every experiment module (E1-E12)."""

import pytest

from repro.eval import report
from repro.eval.experiments import (
    ProtocolSettings,
    ablations,
    accuracy,
    actuator_faults,
    baselines_compare,
    computation,
    correlation_degree,
    detection_ratio,
    multi_fault,
    security,
    timing,
)

SMALL = ProtocolSettings(hours_scale=0.25, pairs=8, seed=4)
NAMES = ["houseA", "D_houseA"]


class TestAccuracy:
    def test_rows_and_ranges(self):
        rows = accuracy.run(NAMES, SMALL)
        assert [r.dataset for r in rows] == NAMES
        for row in rows:
            for value in (
                row.detection_precision,
                row.detection_recall,
                row.identification_precision,
                row.identification_recall,
            ):
                assert 0.0 <= value <= 1.0

    def test_averages(self):
        rows = accuracy.run(NAMES, SMALL)
        avg = accuracy.averages(rows)
        assert set(avg) == {
            "detection_precision",
            "detection_recall",
            "identification_precision",
            "identification_recall",
        }

    def test_report_formatting(self):
        rows = accuracy.run(NAMES, SMALL)
        text = report.format_accuracy(rows)
        assert "houseA" in text and "%" in text


class TestTiming:
    def test_rows(self):
        rows = timing.run(NAMES, SMALL)
        assert all(row.detection_minutes >= 0 for row in rows)

    def test_by_check(self):
        rows = timing.run_by_check(NAMES, SMALL)
        assert [r.dataset for r in rows] == NAMES
        text = report.format_check_timing(rows)
        assert "correlation check" in text


class TestComputation:
    def test_rows_under_budget(self):
        rows = computation.run(NAMES, SMALL)
        for row in rows:
            assert row.total_ms < 50.0  # the paper's real-time bound
        assert "total" in report.format_computation(rows)


class TestDegree:
    def test_rows(self):
        rows = correlation_degree.run(NAMES, SMALL)
        degrees = {r.dataset: r.correlation_degree for r in rows}
        assert degrees["houseA"] < degrees["D_houseA"]
        assert "correlation degree" in report.format_degree(rows)


class TestDetectionRatio:
    def test_shares_sum_to_one(self):
        rows = detection_ratio.run(NAMES, SMALL)
        for row in rows:
            if row.detections:
                assert row.correlation_share + row.transition_share == pytest.approx(
                    1.0
                )
        assert "fault type" in report.format_detection_ratio(rows)


class TestActuatorFaults:
    def test_runs_on_testbed(self):
        rows = actuator_faults.run(["D_houseA"], SMALL)
        assert rows[0].dataset == "D_houseA"
        assert 0.0 <= rows[0].identification_recall <= 1.0


class TestMultiFault:
    def test_result_shape(self):
        result = multi_fault.run("D_houseA", settings=SMALL)
        assert result.segments == SMALL.pairs
        assert 0.0 <= result.identification_precision <= 1.0


class TestAblations:
    def test_precompute_period(self):
        points = ablations.precompute_period("houseA", SMALL)
        assert len(points) == 2
        assert points[0].label != points[1].label

    def test_window_duration(self):
        points = ablations.window_duration("houseA", (60.0, 120.0), SMALL)
        assert [p.label for p in points] == ["window=60s", "window=120s"]

    def test_two_step_closure(self):
        on, off = ablations.two_step_closure("houseA", SMALL)
        # Disabling the closure can only produce more (or equal) false
        # positives on faultless segments.
        assert off.false_positive_rate >= on.false_positive_rate - 1e-9


class TestSecurity:
    def test_both_attacks_run(self):
        outcomes = security.run("D_houseA", SMALL)
        kinds = {o.kind for o in outcomes}
        assert kinds == {"temperature", "light"}


class TestBaselinesCompare:
    def test_dice_and_one_baseline(self):
        rows = baselines_compare.run(
            "D_houseA", detectors=["dice", "correlation-only"], settings=SMALL
        )
        assert [r.detector for r in rows] == ["dice", "correlation-only"]
        for row in rows:
            assert 0.0 <= row.detection_recall <= 1.0
