"""Tests for evaluation metrics."""

import pytest

from repro.eval import DetectionCounts, IdentificationCounts, TimingStats


class TestDetectionCounts:
    def test_precision_recall(self):
        counts = DetectionCounts(
            true_positives=9, false_negatives=1, false_positives=1, true_negatives=9
        )
        assert counts.precision == pytest.approx(0.9)
        assert counts.recall == pytest.approx(0.9)
        assert counts.false_positive_rate == pytest.approx(0.1)
        assert counts.false_negative_rate == pytest.approx(0.1)

    def test_f1(self):
        counts = DetectionCounts(true_positives=1, false_negatives=1, false_positives=1)
        assert counts.f1 == pytest.approx(0.5)

    def test_zero_denominators(self):
        counts = DetectionCounts()
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_merge(self):
        a = DetectionCounts(true_positives=1)
        a.merge(DetectionCounts(true_positives=2, false_positives=1))
        assert a.true_positives == 3 and a.false_positives == 1


class TestIdentificationCounts:
    def test_precision_recall(self):
        counts = IdentificationCounts(correct=8, named=10, actual=9)
        assert counts.precision == pytest.approx(0.8)
        assert counts.recall == pytest.approx(8 / 9)

    def test_merge(self):
        a = IdentificationCounts(correct=1, named=2, actual=2)
        a.merge(IdentificationCounts(correct=1, named=1, actual=1))
        assert (a.correct, a.named, a.actual) == (2, 3, 3)


class TestTimingStats:
    def test_statistics(self):
        stats = TimingStats()
        for value in (1.0, 3.0, 8.0):
            stats.add(value)
        assert stats.mean == pytest.approx(4.0)
        assert stats.median == 3.0
        assert stats.maximum == 8.0
        assert len(stats) == 3

    def test_empty(self):
        stats = TimingStats()
        assert stats.mean == 0.0 and stats.median == 0.0
