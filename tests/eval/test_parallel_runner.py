"""Process-parallel evaluation must be byte-identical to sequential."""

import pytest

from repro.eval import EvaluationRunner
from repro.eval.runner import _contiguous_chunks


def _run(small_house, workers):
    runner = EvaluationRunner(
        precompute_hours=72.0, segment_hours=6.0, pairs=6, seed=3, workers=workers
    )
    return runner.evaluate(small_house.name, small_house.trace)


@pytest.fixture(scope="module")
def sequential(small_house):
    return _run(small_house, workers=1)


@pytest.fixture(scope="module")
def parallel(small_house):
    return _run(small_house, workers=2)


class TestWorkerParity:
    def test_aggregate_fingerprints_identical(self, sequential, parallel):
        assert (
            sequential.aggregate_fingerprint() == parallel.aggregate_fingerprint()
        )

    def test_outcomes_in_identical_order(self, sequential, parallel):
        assert len(sequential.outcomes) == len(parallel.outcomes) == 6
        for a, b in zip(sequential.outcomes, parallel.outcomes):
            assert a.fault == b.fault
            assert a.detected == b.detected
            assert a.identified == b.identified
            assert a.detection_minutes == b.detection_minutes

    def test_window_counts_identical(self, sequential, parallel):
        assert sequential.timings.windows == parallel.timings.windows

    def test_fingerprint_is_sha256_hex(self, sequential):
        digest = sequential.aggregate_fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_fingerprint_ignores_timings(self, sequential):
        # Same protocol re-run: wall clock differs, fingerprint must not.
        assert sequential.aggregate_fingerprint() == (
            sequential.aggregate_fingerprint()
        )


class TestRunnerValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            EvaluationRunner(workers=0)

    def test_contiguous_chunks_preserve_order(self):
        items = list(range(10))
        chunks = _contiguous_chunks(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunks)

    def test_more_chunks_than_items(self):
        chunks = _contiguous_chunks([1, 2], 8)
        assert [x for chunk in chunks for x in chunk] == [1, 2]
