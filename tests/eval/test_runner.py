"""Tests for the Ch. V protocol runner (small-scale)."""

import pytest

from repro.core import CORRELATION_CHECK, TRANSITION_CHECK
from repro.eval import EvaluationRunner
from repro.faults import FaultType


@pytest.fixture(scope="module")
def result(small_house):
    runner = EvaluationRunner(
        precompute_hours=72.0, segment_hours=6.0, pairs=12, seed=3
    )
    return runner.evaluate(small_house.name, small_house.trace)


class TestDatasetResult:
    def test_outcome_count(self, result):
        assert len(result.outcomes) == 12

    def test_detection_counts_partition(self, result):
        counts = result.detection_counts()
        assert counts.true_positives + counts.false_negatives == 12
        assert counts.false_positives + counts.true_negatives == 12

    def test_reasonable_recall(self, result):
        assert result.detection_counts().recall >= 0.5

    def test_identification_counts_consistent(self, result):
        counts = result.identification_counts()
        assert counts.actual == 12
        assert counts.correct <= counts.named

    def test_detection_time_positive(self, result):
        stats = result.detection_time()
        assert all(minutes >= 0 for minutes in stats.samples)

    def test_identification_no_earlier_than_detection(self, result):
        for outcome in result.outcomes:
            if (
                outcome.detection_minutes is not None
                and outcome.identification_minutes is not None
            ):
                assert outcome.identification_minutes >= outcome.detection_minutes - 1e-9

    def test_check_attribution_labels(self, result):
        for outcome in result.outcomes:
            if outcome.detected:
                assert outcome.detecting_check in (
                    CORRELATION_CHECK,
                    TRANSITION_CHECK,
                )

    def test_ratio_rows_sum_to_one(self, result):
        for checks in result.detection_ratio_by_fault_type().values():
            assert sum(checks.values()) == pytest.approx(1.0)

    def test_computation_stages(self, result):
        ms = result.computation_ms_per_window()
        assert set(ms) == {
            "encoding",
            "correlation_check",
            "transition_check",
            "identification",
        }
        assert all(v >= 0 for v in ms.values())

    def test_metadata(self, result, small_house):
        assert result.num_sensors == len(small_house.trace.registry.sensors())
        assert result.correlation_degree > 0
        assert result.num_groups > 0


class TestRunnerOptions:
    def test_fault_type_restriction(self, small_house):
        runner = EvaluationRunner(precompute_hours=72.0, pairs=6, seed=1)
        result = runner.evaluate(
            small_house.name,
            small_house.trace,
            fault_types=[FaultType.FAIL_STOP],
        )
        assert all(
            outcome.fault.fault_type is FaultType.FAIL_STOP
            for outcome in result.outcomes
        )

    def test_device_pool_restriction(self, small_testbed):
        runner = EvaluationRunner(precompute_hours=72.0, pairs=6, seed=1)
        actuators = small_testbed.trace.registry.actuators()
        result = runner.evaluate(
            small_testbed.name, small_testbed.trace, devices=actuators
        )
        actuator_ids = {a.device_id for a in actuators}
        assert all(o.fault.device_id in actuator_ids for o in result.outcomes)
