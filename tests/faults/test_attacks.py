"""Tests for the Ch. VI security attacks."""

import pytest

from repro.faults import light_attack, spoof_sensor_high, temperature_attack
from tests.conftest import HOUR, make_cyclic_trace


@pytest.fixture
def segment(registry):
    return make_cyclic_trace(registry, hours=2.0)


class TestSpoofing:
    def test_spoofed_readings_present_and_high(self, segment):
        attacked, attack = spoof_sensor_high(segment, "temp_kitchen", HOUR)
        times, values = attacked.events_for("temp_kitchen")
        spoofed = values[times >= HOUR]
        _, clean = segment.events_for("temp_kitchen")
        assert (spoofed >= clean.max()).any()
        assert attack.victim_device_id == "temp_kitchen"

    def test_temperature_attack_margin(self, segment):
        attacked, attack = temperature_attack(segment, "temp_kitchen", HOUR, degrees=15.0)
        _, clean = segment.events_for("temp_kitchen")
        assert attack.spoof_value == pytest.approx(clean.max() + 15.0)

    def test_light_attack_value(self, segment):
        attacked, attack = light_attack(segment, "temp_kitchen", HOUR, lux=400.0)
        assert attack.spoof_value == 400.0
        assert attack.kind == "light"

    def test_attack_reads_as_stuck_at_fault(self, segment):
        _, attack = temperature_attack(segment, "temp_kitchen", HOUR)
        fault = attack.as_fault()
        assert fault.device_id == "temp_kitchen"
        assert fault.onset == HOUR

    def test_unknown_victim_rejected(self, segment):
        with pytest.raises(KeyError):
            spoof_sensor_high(segment, "ghost", HOUR)

    def test_onset_outside_rejected(self, segment):
        with pytest.raises(ValueError):
            spoof_sensor_high(segment, "temp_kitchen", segment.end + 1.0)
