"""Tests for the Ch. VI security attacks.

Covers the spoofing renderings themselves, their determinism, the
``injected_events`` accounting, and — the streaming-composition
contract — that attack frames at or behind the reorder watermark are
never silently lost: each one either reaches a window or is recorded as
a structured ``too_late`` drop, so *injected == windowed + dropped*.
"""

import numpy as np
import pytest

from repro.core import DiceDetector
from repro.faults import (
    attack_events,
    coordinated_attack,
    light_attack,
    spoof_sensor_high,
    temperature_attack,
)
from repro.streaming import HardenedOnlineDice
from tests.conftest import HOUR, make_cyclic_trace


@pytest.fixture
def segment(registry):
    return make_cyclic_trace(registry, hours=2.0)


class TestSpoofing:
    def test_spoofed_readings_present_and_high(self, segment):
        attacked, attack = spoof_sensor_high(segment, "temp_kitchen", HOUR)
        times, values = attacked.events_for("temp_kitchen")
        spoofed = values[times >= HOUR]
        _, clean = segment.events_for("temp_kitchen")
        assert (spoofed >= clean.max()).any()
        assert attack.victim_device_id == "temp_kitchen"

    def test_temperature_attack_margin(self, segment):
        attacked, attack = temperature_attack(segment, "temp_kitchen", HOUR, degrees=15.0)
        _, clean = segment.events_for("temp_kitchen")
        assert attack.spoof_value == pytest.approx(clean.max() + 15.0)

    def test_light_attack_value(self, segment):
        attacked, attack = light_attack(segment, "temp_kitchen", HOUR, lux=400.0)
        assert attack.spoof_value == 400.0
        assert attack.kind == "light"

    def test_attack_reads_as_stuck_at_fault(self, segment):
        _, attack = temperature_attack(segment, "temp_kitchen", HOUR)
        fault = attack.as_fault()
        assert fault.device_id == "temp_kitchen"
        assert fault.onset == HOUR

    def test_unknown_victim_rejected(self, segment):
        with pytest.raises(KeyError):
            spoof_sensor_high(segment, "ghost", HOUR)

    def test_onset_outside_rejected(self, segment):
        with pytest.raises(ValueError):
            spoof_sensor_high(segment, "temp_kitchen", segment.end + 1.0)

    def test_deterministic(self, segment):
        # Attack injection is a pure function: two invocations with the
        # same inputs must agree event for event and field for field.
        a1, atk1 = temperature_attack(segment, "temp_kitchen", HOUR)
        a2, atk2 = temperature_attack(segment, "temp_kitchen", HOUR)
        assert atk1 == atk2
        assert np.array_equal(a1.timestamps, a2.timestamps)
        assert np.array_equal(a1.device_indices, a2.device_indices)
        assert np.array_equal(a1.values, a2.values)

    def test_injected_events_accounting(self, segment):
        attacked, attack = spoof_sensor_high(segment, "temp_kitchen", HOUR)
        assert attack.injected_events == len(attacked) - len(segment)
        assert attack.injected_events > 0

    def test_attack_events_match_trace_injection(self, segment):
        # The stream-level rendering must be the *same* frames the
        # trace-level injection adds: one per count, on-cadence, spoofed.
        attacked, attack = spoof_sensor_high(segment, "temp_kitchen", HOUR)
        frames = attack_events(segment, attack)
        assert len(frames) == attack.injected_events
        assert all(e.device_id == "temp_kitchen" for e in frames)
        assert all(e.value == attack.spoof_value for e in frames)
        expected_times = np.arange(HOUR, segment.end, attack.report_period)
        assert np.array_equal([e.timestamp for e in frames], expected_times)


class TestCoordinated:
    def test_multiple_victims_staggered(self, segment):
        victims = ["temp_kitchen", "motion_bedroom"]
        attacked, attacks = coordinated_attack(segment, victims, HOUR)
        assert [a.victim_device_id for a in attacks] == sorted(victims)
        assert len({a.report_period for a in attacks}) == len(attacks)
        total = sum(a.injected_events for a in attacks)
        assert total == len(attacked) - len(segment)

    def test_frames_unique_per_device(self, segment):
        # Staggered cadences keep every (device, timestamp) pair distinct,
        # so the reorder buffer's duplicate check never eats real frames.
        _, attacks = coordinated_attack(
            segment, ["temp_kitchen", "motion_bedroom"], HOUR
        )
        for attack in attacks:
            frames = attack_events(segment, attack)
            keys = [(e.device_id, e.timestamp) for e in frames]
            assert len(keys) == len(set(keys))

    def test_deterministic(self, segment):
        _, a1 = coordinated_attack(segment, ["temp_kitchen", "motion_bedroom"], HOUR)
        _, a2 = coordinated_attack(segment, ["temp_kitchen", "motion_bedroom"], HOUR)
        assert a1 == a2

    def test_empty_victims_rejected(self, segment):
        with pytest.raises(ValueError):
            coordinated_attack(segment, [], HOUR)


class TestWatermarkComposition:
    """Attack windows composed with the reorder buffer's lateness budget."""

    def _runtime(self, registry, trace, split):
        detector = DiceDetector(registry).fit(trace.slice(0.0, split))
        return HardenedOnlineDice(
            detector, start=split, lateness_seconds=120.0
        )

    def test_late_frames_recorded_not_silently_dropped(self, registry):
        trace = make_cyclic_trace(registry, hours=4.0)
        split = 2.0 * HOUR
        runtime = self._runtime(registry, trace, split)
        runtime.ingest_many(list(trace.slice(split, trace.end)))
        watermark = runtime.reorder.watermark
        assert watermark > split
        before = dict(runtime.drops.counts)

        # Onset 90 s behind the watermark: with the 30 s cadence, three
        # frames fall strictly behind it and one lands exactly *on* it —
        # the boundary frame must be accepted, not dropped.
        _, attack = spoof_sensor_high(trace, "temp_kitchen", watermark - 90.0)
        frames = attack_events(trace, attack)
        assert len(frames) == attack.injected_events
        late = [e for e in frames if e.timestamp < watermark]
        assert len(late) == 3
        runtime.ingest_many(frames)

        too_late = runtime.drops.counts.get("too_late", 0) - before.get(
            "too_late", 0
        )
        assert too_late == len(late)
        # Structured records, not a bare counter: each drop names the
        # victim, the reason, and the frame's timestamp.
        recorded = [
            d
            for d in runtime.drops.samples
            if d.reason == "too_late" and d.device_id == "temp_kitchen"
        ]
        assert len(recorded) == len(late)
        assert sorted(d.timestamp for d in recorded) == sorted(
            e.timestamp for e in late
        )
        # Zero silent loss: every injected frame is accounted for — the
        # late ones in the drop log, the rest at/above the watermark where
        # the reorder buffer must release them into windows.
        accepted = [e for e in frames if e.timestamp >= watermark]
        assert attack.injected_events == len(accepted) + too_late
        total_drops = sum(runtime.drops.counts.values()) - sum(before.values())
        assert total_drops == too_late

        # And the surviving frames really reach the detector: the spoofed
        # readings trigger a detection once the stream is flushed.
        alerts = runtime.finish_stream(trace.end)
        assert any(a.kind == "detection" for a in alerts)

    def test_fully_expired_attack_is_fully_accounted(self, registry):
        # An attack window entirely behind the watermark (a replayed
        # campaign) produces nothing but structured too_late records.
        trace = make_cyclic_trace(registry, hours=4.0)
        split = 2.0 * HOUR
        runtime = self._runtime(registry, trace, split)
        runtime.ingest_many(list(trace.slice(split, trace.end)))
        watermark = runtime.reorder.watermark

        onset = split + 60.0
        assert onset < watermark
        _, attack = spoof_sensor_high(trace, "temp_kitchen", onset)
        frames = [
            e for e in attack_events(trace, attack) if e.timestamp < watermark
        ]
        before = runtime.drops.counts.get("too_late", 0)
        runtime.ingest_many(frames)
        assert runtime.drops.counts.get("too_late", 0) - before == len(frames)
