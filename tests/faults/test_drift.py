"""Tests for the concept-drift generators."""

import numpy as np
import pytest

from repro.faults import (
    ALL_DRIFT_TYPES,
    DriftType,
    apply_drift,
    inject_device_replacement,
    inject_seasonal_shift,
)
from tests.conftest import HOUR, make_cyclic_trace


@pytest.fixture
def segment(registry):
    return make_cyclic_trace(registry, hours=4.0)


class TestSeasonalShift:
    def test_subset_of_sensors_shifts(self, segment):
        drifted, drift = inject_seasonal_shift(
            segment, 2 * HOUR, np.random.default_rng(7)
        )
        assert drift.drift_type is DriftType.SEASONAL_SHIFT
        # Half of the three sensors, rounded: two victims, never the
        # actuator, plain str ids (JSON-serializable).
        assert len(drift.devices) == 2
        assert "hue_kitchen" not in drift.devices
        assert all(type(d) is str for d in drift.devices)
        for victim in drift.devices:
            before_t, _ = segment.events_for(victim)
            after_t, _ = drifted.events_for(victim)
            moved = before_t[before_t >= drift.onset] + drift.shift_seconds
            expected = moved[moved < segment.end]
            assert np.array_equal(after_t[after_t >= drift.onset], expected)

    def test_training_prefix_untouched(self, segment):
        drifted, drift = inject_seasonal_shift(
            segment, 2 * HOUR, np.random.default_rng(7)
        )
        pre = segment.slice(segment.start, drift.onset)
        post = drifted.slice(segment.start, drift.onset)
        assert len(pre) == len(post)
        assert np.array_equal(pre.timestamps, post.timestamps)

    def test_unshifted_devices_untouched(self, segment):
        drifted, drift = inject_seasonal_shift(
            segment, 2 * HOUR, np.random.default_rng(7)
        )
        untouched = [
            d.device_id
            for d in segment.registry
            if d.device_id not in drift.devices
        ]
        assert untouched
        for device_id in untouched:
            t0, v0 = segment.events_for(device_id)
            t1, v1 = drifted.events_for(device_id)
            assert np.array_equal(t0, t1)
            assert np.array_equal(v0, v1)

    def test_deterministic_per_seed(self, segment):
        d1, i1 = inject_seasonal_shift(segment, 2 * HOUR, np.random.default_rng(3))
        d2, i2 = inject_seasonal_shift(segment, 2 * HOUR, np.random.default_rng(3))
        assert i1 == i2
        assert np.array_equal(d1.timestamps, d2.timestamps)

    def test_onset_outside_rejected(self, segment):
        with pytest.raises(ValueError):
            inject_seasonal_shift(
                segment, segment.end + 1.0, np.random.default_rng(0)
            )


class TestDeviceReplacement:
    def test_numeric_replacement_lags_and_biases(self, segment):
        drifted, drift = inject_device_replacement(
            segment, "temp_kitchen", 2 * HOUR, np.random.default_rng(7)
        )
        assert drift.devices == ("temp_kitchen",)
        # Lag is jittered within +/-20% of the nominal 240 s.
        assert 0.8 * 240.0 <= drift.shift_seconds <= 1.2 * 240.0
        t0, v0 = segment.events_for("temp_kitchen")
        t1, v1 = drifted.events_for("temp_kitchen")
        post = t1 >= drift.onset
        # Post-onset readings carry the calibration bias.
        kept = t0[t0 >= drift.onset] + drift.shift_seconds < segment.end
        assert np.allclose(v1[post], v0[t0 >= drift.onset][kept] + 2.0)

    def test_binary_replacement_has_no_bias(self, segment):
        drifted, drift = inject_device_replacement(
            segment, "motion_kitchen", 2 * HOUR, np.random.default_rng(7)
        )
        _, values = drifted.events_for("motion_kitchen")
        assert set(np.unique(values)) <= {0.0, 1.0}

    def test_unknown_device_rejected(self, segment):
        with pytest.raises(KeyError):
            inject_device_replacement(
                segment, "ghost", 2 * HOUR, np.random.default_rng(0)
            )


class TestApplyDrift:
    @pytest.mark.parametrize("drift_type", ALL_DRIFT_TYPES)
    def test_dispatch(self, segment, drift_type):
        drifted, drift = apply_drift(
            segment, drift_type, 2 * HOUR, np.random.default_rng(7)
        )
        assert drift.drift_type is drift_type
        assert drift.devices
        assert drift.onset == 2 * HOUR
        # Drift is not a fault: events keep flowing after the onset.
        for victim in drift.devices:
            times, _ = drifted.events_for(victim)
            assert (times >= drift.onset).any()
