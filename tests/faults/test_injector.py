"""Tests for randomized fault placement and the segment protocol."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultType, InjectionPolicy, make_segment_pairs, segment_starts, split_precompute
from tests.conftest import HOUR, make_cyclic_trace


@pytest.fixture
def segment(registry):
    return make_cyclic_trace(registry, hours=2.0)


class TestFaultInjector:
    def test_chosen_device_has_events_after_onset(self, segment):
        injector = FaultInjector(np.random.default_rng(0))
        for _ in range(20):
            fault = injector.choose(segment)
            times, _ = segment.events_for(fault.device_id)
            assert (times >= fault.onset).sum() >= 1

    def test_fault_type_can_be_forced(self, segment):
        injector = FaultInjector(np.random.default_rng(0))
        fault = injector.choose(segment, fault_type=FaultType.SPIKE)
        assert fault.fault_type is FaultType.SPIKE

    def test_device_pool_restriction(self, segment):
        injector = FaultInjector(np.random.default_rng(0))
        pool = [segment.registry["temp_kitchen"]]
        fault = injector.choose(segment, devices=pool)
        assert fault.device_id == "temp_kitchen"

    def test_empty_segment_rejected(self, registry):
        from repro.model import Trace

        injector = FaultInjector(np.random.default_rng(0))
        with pytest.raises(ValueError):
            injector.choose(Trace.empty(registry, 0.0, HOUR))

    def test_inject_returns_fault_and_perturbed_trace(self, segment):
        injector = FaultInjector(np.random.default_rng(0))
        faulty, fault = injector.inject(segment, fault_type=FaultType.FAIL_STOP)
        times, _ = faulty.events_for(fault.device_id)
        assert (times < fault.onset).all()

    def test_inject_many_distinct_devices(self, segment):
        injector = FaultInjector(np.random.default_rng(0))
        _, faults = injector.inject_many(segment, 3)
        ids = [f.device_id for f in faults]
        assert len(ids) == len(set(ids))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            InjectionPolicy(onset_fraction=(0.9, 0.1))


class TestSegmentProtocol:
    def test_split_precompute(self, segment):
        training, evaluation = split_precompute(segment, 1.0)
        assert training.duration_hours == pytest.approx(1.0)
        assert evaluation.start == training.end

    def test_split_bounds_checked(self, segment):
        with pytest.raises(ValueError):
            split_precompute(segment, 99.0)

    def test_segment_starts_disjoint_grid_first(self, segment):
        _, evaluation = split_precompute(segment, 0.5)
        starts = segment_starts(evaluation, 0.5, 3, np.random.default_rng(0))
        assert len(starts) == 3
        grid = {evaluation.start + k * 1800.0 for k in range(3)}
        assert set(starts) == grid

    def test_segment_starts_oversampled(self, segment):
        _, evaluation = split_precompute(segment, 0.5)
        starts = segment_starts(evaluation, 0.5, 10, np.random.default_rng(0))
        assert len(starts) == 10

    def test_make_segment_pairs_shapes(self, registry):
        trace = make_cyclic_trace(registry, hours=8.0)
        training, pairs = make_segment_pairs(
            trace,
            np.random.default_rng(0),
            precompute_hours=4.0,
            segment_hours=1.0,
            count=6,
        )
        assert training.duration_hours == pytest.approx(4.0)
        assert len(pairs) == 6
        for pair in pairs:
            assert pair.faultless.duration == pytest.approx(3600.0)
            assert pair.faultless.start >= training.end
            assert pair.fault.onset >= pair.faultless.start
            # The faulty copy is the same segment, perturbed.
            assert pair.faulty.start == pair.faultless.start
