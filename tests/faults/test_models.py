"""Tests for the five fault models (Ch. IV.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultType,
    InjectedFault,
    apply_fault,
    inject_fail_stop,
    inject_high_noise,
    inject_outlier,
    inject_spike,
    inject_stuck_at,
)
from tests.conftest import HOUR, make_cyclic_trace


@pytest.fixture
def segment(registry):
    return make_cyclic_trace(registry, hours=2.0)


ONSET = 0.5 * HOUR


class TestFailStop:
    def test_no_events_after_onset(self, segment):
        faulty = inject_fail_stop(segment, "motion_kitchen", ONSET)
        times, _ = faulty.events_for("motion_kitchen")
        assert (times < ONSET).all()

    def test_events_before_onset_kept(self, segment):
        faulty = inject_fail_stop(segment, "motion_kitchen", ONSET)
        times, _ = segment.events_for("motion_kitchen")
        faulty_times, _ = faulty.events_for("motion_kitchen")
        assert len(faulty_times) == (times < ONSET).sum()

    def test_other_devices_untouched(self, segment):
        faulty = inject_fail_stop(segment, "motion_kitchen", ONSET)
        for device in ("motion_bedroom", "temp_kitchen"):
            t0, v0 = segment.events_for(device)
            t1, v1 = faulty.events_for(device)
            assert np.array_equal(t0, t1) and np.array_equal(v0, v1)


class TestStuckAt:
    def test_numeric_freezes_at_constant(self, segment):
        rng = np.random.default_rng(0)
        _, values = segment.events_for("temp_kitchen")
        faulty = inject_stuck_at(segment, "temp_kitchen", ONSET, rng)
        t, v = faulty.events_for("temp_kitchen")
        after = v[t >= ONSET]
        assert len(after) > 0
        assert len(set(after)) == 1  # frozen
        assert after[0] in values  # a plausible, previously-seen value

    def test_binary_sticks_active(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_stuck_at(segment, "motion_bedroom", ONSET, rng)
        t, v = faulty.events_for("motion_bedroom")
        after = v[t >= ONSET]
        assert len(after) > 100  # continuous reporting
        assert (after == 1.0).all()

    def test_numeric_keeps_reporting_schedule(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_stuck_at(segment, "temp_kitchen", ONSET, rng)
        t0, _ = segment.events_for("temp_kitchen")
        t1, _ = faulty.events_for("temp_kitchen")
        assert np.array_equal(t0, t1)  # pattern frozen, values replaced


class TestOutlier:
    def test_normal_data_continues(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_outlier(segment, "temp_kitchen", ONSET, rng)
        t0, _ = segment.events_for("temp_kitchen")
        t1, _ = faulty.events_for("temp_kitchen")
        assert len(t1) > len(t0)

    def test_outlier_values_are_anomalous(self, segment):
        rng = np.random.default_rng(0)
        _, values = segment.events_for("temp_kitchen")
        faulty = inject_outlier(segment, "temp_kitchen", ONSET, rng)
        _, faulty_values = faulty.events_for("temp_kitchen")
        assert faulty_values.max() > values.max() + (values.max() - values.min())

    def test_occurrence_count_controls_bursts(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_outlier(segment, "motion_bedroom", ONSET, rng, occurrences=1)
        t0, _ = segment.events_for("motion_bedroom")
        t1, _ = faulty.events_for("motion_bedroom")
        assert 3 <= len(t1) - len(t0) <= 6  # one burst


class TestHighNoise:
    def test_numeric_variance_rises(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_high_noise(segment, "temp_kitchen", ONSET, rng)
        t, v = faulty.events_for("temp_kitchen")
        after = v[t >= ONSET]
        _, clean = segment.events_for("temp_kitchen")
        assert after.std() > clean.std() * 2

    def test_binary_flickers(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_high_noise(segment, "motion_bedroom", ONSET, rng)
        t, _ = faulty.events_for("motion_bedroom")
        t0, _ = segment.events_for("motion_bedroom")
        assert len(t) > len(t0)


class TestSpike:
    def test_burst_is_short(self, segment):
        rng = np.random.default_rng(0)
        faulty = inject_spike(segment, "temp_kitchen", ONSET, rng, burst_seconds=120.0)
        t, v = faulty.events_for("temp_kitchen")
        _, clean = segment.events_for("temp_kitchen")
        spike_times = t[(t >= ONSET) & (v > clean.max() + 1.0)]
        assert len(spike_times) > 0
        assert spike_times.max() - spike_times.min() <= 120.0

    def test_spike_values_exceed_range(self, segment):
        rng = np.random.default_rng(0)
        _, values = segment.events_for("temp_kitchen")
        faulty = inject_spike(segment, "temp_kitchen", ONSET, rng)
        _, faulty_values = faulty.events_for("temp_kitchen")
        assert faulty_values.max() > values.max()


class TestApplyFault:
    def test_dispatch_covers_all_types(self, segment):
        rng = np.random.default_rng(0)
        for fault_type in FaultType:
            fault = InjectedFault("temp_kitchen", fault_type, ONSET)
            faulty = apply_fault(segment, fault, rng)
            assert faulty is not segment

    def test_unknown_device_rejected(self, segment):
        with pytest.raises(KeyError):
            apply_fault(
                segment,
                InjectedFault("ghost", FaultType.FAIL_STOP, ONSET),
                np.random.default_rng(0),
            )

    def test_onset_outside_interval_rejected(self, segment):
        with pytest.raises(ValueError):
            apply_fault(
                segment,
                InjectedFault("temp_kitchen", FaultType.FAIL_STOP, segment.end + 1),
                np.random.default_rng(0),
            )


@settings(max_examples=20, deadline=None)
@given(
    fault_type=st.sampled_from(list(FaultType)),
    onset_fraction=st.floats(0.1, 0.9),
)
def test_faults_never_touch_other_devices(fault_type, onset_fraction):
    from repro.model import DeviceRegistry, SensorType, binary_sensor, numeric_sensor

    registry = DeviceRegistry(
        [
            binary_sensor("victim", SensorType.MOTION),
            numeric_sensor("bystander", SensorType.TEMPERATURE),
        ]
    )
    times = np.arange(0.0, 3600.0, 60.0)
    trace = None
    from repro.model import Trace

    trace = Trace(
        registry,
        np.concatenate([times, times + 1.0]),
        np.concatenate(
            [np.zeros(len(times), np.int32), np.ones(len(times), np.int32)]
        ),
        np.concatenate([np.ones(len(times)), np.full(len(times), 20.0)]),
        start=0.0,
        end=3600.0,
    )
    onset = onset_fraction * 3600.0
    fault = InjectedFault("victim", fault_type, onset)
    faulty = apply_fault(trace, fault, np.random.default_rng(1))
    t0, v0 = trace.events_for("bystander")
    t1, v1 = faulty.events_for("bystander")
    assert np.array_equal(t0, t1)
    assert np.array_equal(v0, v1)
