"""Tests for the pipe-fault (delivery channel) injectors."""

import math

import numpy as np
import pytest

from repro.faults import (
    ALL_PIPE_FAULT_TYPES,
    PipeFaultInjector,
    PipeFaultSpec,
    PipeFaultType,
    apply_pipe_fault,
    corrupt_values,
    delay_events,
    drop_events,
    duplicate_events,
    reorder_events,
)
from repro.model import Event


@pytest.fixture
def events():
    return [Event(float(t), f"dev_{t % 3}", float(t)) for t in range(100)]


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDrop:
    def test_drops_roughly_rate(self, events, rng):
        out = drop_events(events, rng, rate=0.3)
        assert len(out) < len(events)
        assert set(out) <= set(events)

    def test_zero_rate_is_identity(self, events, rng):
        assert drop_events(events, rng, rate=0.0) == events


class TestDelayAndReorder:
    def test_delay_keeps_timestamps_moves_arrival(self, events, rng):
        out = delay_events(events, rng, rate=0.5, max_delay_seconds=10.0)
        assert sorted(out) == sorted(events)  # same multiset, timestamps intact
        assert out != events  # arrival order perturbed

    def test_reorder_bounded_by_max_delay(self, events, rng):
        budget = 5.0
        out = reorder_events(events, rng, max_delay_seconds=budget)
        # No event may arrive after one whose timestamp exceeds its own
        # by more than the jitter budget.
        front = float("-inf")
        for event in out:
            assert event.timestamp > front - budget
            front = max(front, event.timestamp)

    def test_zero_jitter_is_identity(self, events, rng):
        assert reorder_events(events, rng, max_delay_seconds=0.0) == events


class TestDuplicate:
    def test_copies_added_not_replaced(self, events, rng):
        out = duplicate_events(events, rng, rate=0.25, max_delay_seconds=10.0)
        assert len(out) > len(events)
        # Every original is still there; extras are exact copies.
        from collections import Counter

        original = Counter(events)
        result = Counter(out)
        assert all(result[e] >= 1 for e in original)
        assert all(e in original for e in result)


class TestCorrupt:
    def test_corrupted_values_non_finite(self, events, rng):
        out = corrupt_values(events, rng, rate=0.2)
        assert len(out) == len(events)
        corrupted = [e for e in out if not math.isfinite(e.value)]
        assert corrupted
        # Timestamps and ids are untouched.
        for before, after in zip(events, out):
            assert after.timestamp == before.timestamp
            assert after.device_id == before.device_id


class TestDispatchAndInjector:
    @pytest.mark.parametrize("fault_type", ALL_PIPE_FAULT_TYPES)
    def test_apply_dispatch(self, events, rng, fault_type):
        out = apply_pipe_fault(
            events, PipeFaultSpec(fault_type, rate=0.1, max_delay_seconds=5.0), rng
        )
        assert isinstance(out, list)

    def test_injector_composes(self, events, rng):
        injector = PipeFaultInjector(
            rng,
            [
                PipeFaultSpec(PipeFaultType.DROP, rate=0.1),
                PipeFaultSpec(PipeFaultType.REORDER, max_delay_seconds=5.0),
                PipeFaultSpec(PipeFaultType.CORRUPT_VALUE, rate=0.1),
            ],
        )
        out = injector.apply(events)
        assert out and len(out) <= len(events)

    def test_injector_requires_specs(self, rng):
        with pytest.raises(ValueError):
            PipeFaultInjector(rng, [])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PipeFaultSpec(PipeFaultType.DROP, rate=1.5)
        with pytest.raises(ValueError):
            PipeFaultSpec(PipeFaultType.DELAY, max_delay_seconds=-1.0)
