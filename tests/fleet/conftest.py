"""Shared fixtures for the fleet tests.

The fleet homes are generated once per session — the simulator and fit
are cheap (tens of milliseconds for four 30 h homes), but every test in
this tree wants the same deterministic fleet, and sharing it keeps the
parity tests honest: the standalone baselines and the sharded runs see
the *same* detector objects.
"""

from __future__ import annotations

import pytest

from repro.fleet import build_fleet_homes

FLEET_SEED = 3
FLEET_HOMES = 4
FLEET_HOURS = 30.0
FLEET_TRAIN_HOURS = 24.0


def canon(alerts) -> str:
    """A byte-comparable rendering of an alert sequence."""
    return repr(
        [
            (a.kind, a.time, a.check, a.cases, tuple(sorted(a.devices)), a.converged)
            for a in alerts
        ]
    )


@pytest.fixture(scope="session")
def fleet_homes():
    return build_fleet_homes(
        FLEET_HOMES, seed=FLEET_SEED, hours=FLEET_HOURS,
        train_hours=FLEET_TRAIN_HOURS,
    )


@pytest.fixture(scope="session")
def fleet_detectors(fleet_homes):
    return {home.home_id: home.fit_detector() for home in fleet_homes}
