"""Fleet checkpoint/restore: manifest + per-home snapshots.

The property under test mirrors the single-gateway one, lifted to the
fleet:  restore(checkpoint(mid-stream)) + replay(tail) produces exactly
the alerts of an uninterrupted run — per home, byte-identical — for
randomized cut points and even when the shard count changes across the
restore.
"""

import json
import os
import random

import pytest

from repro.fleet import (
    MANIFEST_NAME,
    FleetGateway,
    build_fleet_homes,
    load_fleet_manifest,
    merged_ticks,
    replay_fleet,
    restore_fleet,
)
from repro.streaming import CheckpointError
from tests.fleet.conftest import canon


def _fresh_gateway(homes, detectors, num_shards=2):
    gateway = FleetGateway(num_shards)
    for home in homes:
        gateway.add_home(home.home_id, detectors[home.home_id], start=home.split)
    return gateway


@pytest.fixture(scope="module")
def uninterrupted(fleet_homes, fleet_detectors):
    gateway = _fresh_gateway(fleet_homes, fleet_detectors)
    replay_fleet(gateway, fleet_homes)
    return {h.home_id: canon(gateway.alerts_of(h.home_id)) for h in fleet_homes}


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("restore_shards", [None, 5])
def test_random_cut_round_trip(
    seed, restore_shards, fleet_homes, fleet_detectors, uninterrupted, tmp_path
):
    ticks = list(merged_ticks(fleet_homes))
    cut = random.Random(seed).randrange(1, len(ticks))
    first = _fresh_gateway(fleet_homes, fleet_detectors)
    for _, batch in ticks[:cut]:
        first.dispatch(batch)
    first.save_checkpoint(tmp_path)

    resumed = restore_fleet(
        fleet_detectors, tmp_path, num_shards=restore_shards
    )
    assert resumed.num_shards == (restore_shards or first.num_shards)
    replay_fleet(resumed, fleet_homes)
    for home in fleet_homes:
        head = first.alerts_of(home.home_id)
        tail = resumed.alerts_of(home.home_id)
        assert canon(head + tail) == uninterrupted[home.home_id], (
            f"{home.home_id} diverged after cut at tick {cut}"
        )


def test_fleet_counter_totals_survive_restart(tmp_path):
    # Fresh homes/detectors (not the session fixtures): counter restoration
    # writes into the detectors' registries, which must not be shared with
    # other scenarios for totals to be comparable.
    homes = build_fleet_homes(2, seed=11, hours=28.0, train_hours=24.0)
    detectors = {h.home_id: h.fit_detector() for h in homes}
    full = _fresh_gateway(homes, detectors)
    replay_fleet(full, homes)
    expected_events = _fleet_events_total(full)
    expected_alerts = _alerts_total(full)

    detectors2 = {h.home_id: h.fit_detector() for h in homes}
    ticks = list(merged_ticks(homes))
    head = ticks[: len(ticks) // 2]
    first = _fresh_gateway(homes, detectors2)
    for _, batch in head:
        first.dispatch(batch)
    first.save_checkpoint(tmp_path)
    # Delivery across a restore is at-least-once: events newer than the
    # watermark were checkpointed inside the reorder buffer AND get
    # re-sent by the tail replay (the ingest path dedupes them, so alerts
    # and alert counters are exact; the router's routed-events counter
    # legitimately counts the re-delivery).
    watermarks = {
        h.home_id: first.runtime_of(h.home_id).reorder.watermark for h in homes
    }
    redelivered = sum(
        1
        for _, batch in head
        for home_id, event in batch
        if event.timestamp > watermarks[home_id]
    )
    resumed = restore_fleet(detectors2, tmp_path)
    replay_fleet(resumed, homes)
    assert _fleet_events_total(resumed) == expected_events + redelivered
    assert _alerts_total(resumed) == expected_alerts


def _fleet_events_total(gateway) -> float:
    entry = gateway.metrics_snapshot()["metrics"].get("dice_fleet_events_total")
    return sum(row["value"] for row in entry["series"]) if entry else 0.0


def _alerts_total(gateway) -> float:
    entry = gateway.metrics_snapshot()["metrics"].get("dice_alerts_total")
    return sum(row["value"] for row in entry["series"]) if entry else 0.0


def test_checkpoint_layout(fleet_homes, fleet_detectors, tmp_path):
    gateway = _fresh_gateway(fleet_homes, fleet_detectors)
    replay_fleet(gateway, fleet_homes, finish=False)
    gateway.save_checkpoint(tmp_path)
    files = sorted(os.listdir(tmp_path))
    assert MANIFEST_NAME in files
    assert len(files) == len(fleet_homes) + 1
    manifest = load_fleet_manifest(tmp_path)
    assert set(manifest["homes"]) == set(gateway.home_ids)
    for home_id, entry in manifest["homes"].items():
        assert entry["shard"] == gateway.shard_index_of(home_id)
        assert (tmp_path / entry["file"]).exists()


def test_restore_requires_every_detector(
    fleet_homes, fleet_detectors, tmp_path
):
    gateway = _fresh_gateway(fleet_homes, fleet_detectors)
    replay_fleet(gateway, fleet_homes, finish=False)
    gateway.save_checkpoint(tmp_path)
    partial = dict(fleet_detectors)
    dropped = fleet_homes[0].home_id
    del partial[dropped]
    with pytest.raises(CheckpointError, match=dropped):
        restore_fleet(partial, tmp_path)


def test_restore_names_home_with_missing_snapshot(
    fleet_homes, fleet_detectors, tmp_path
):
    gateway = _fresh_gateway(fleet_homes, fleet_detectors)
    replay_fleet(gateway, fleet_homes, finish=False)
    gateway.save_checkpoint(tmp_path)
    manifest = load_fleet_manifest(tmp_path)
    victim = sorted(manifest["homes"])[0]
    os.remove(tmp_path / manifest["homes"][victim]["file"])
    with pytest.raises(CheckpointError, match=f"missing snapshot.*{victim}"):
        restore_fleet(fleet_detectors, tmp_path)


def test_restore_names_home_with_fingerprint_mismatch(
    fleet_homes, fleet_detectors, tmp_path
):
    gateway = _fresh_gateway(fleet_homes, fleet_detectors)
    replay_fleet(gateway, fleet_homes, finish=False)
    gateway.save_checkpoint(tmp_path)
    manifest = load_fleet_manifest(tmp_path)
    victim = sorted(manifest["homes"])[1]
    manifest["homes"][victim]["model"]["num_groups"] += 1
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match=f"{victim}.*different\\s+model"):
        restore_fleet(fleet_detectors, tmp_path)


def test_manifest_validation_rejects_garbage(tmp_path):
    path = tmp_path / MANIFEST_NAME
    path.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(CheckpointError, match="not a fleet manifest"):
        load_fleet_manifest(tmp_path)

    path.write_text(
        json.dumps(
            {
                "schema": "dice-fleet-manifest/1",
                "num_shards": 2,
                "homes": {"h": {"file": "../outside.json"}},
            }
        )
    )
    with pytest.raises(CheckpointError, match="escapes"):
        load_fleet_manifest(tmp_path)
