"""Router behaviour: registration, stray tenants, health, merged telemetry."""

import pytest

from repro import telemetry
from repro.fleet import (
    FLEET_EVENTS_TOTAL,
    FLEET_UNROUTED_TOTAL,
    FleetGateway,
    replay_fleet,
    shard_of,
)


@pytest.fixture()
def gateway(fleet_homes, fleet_detectors):
    gw = FleetGateway(2)
    for home in fleet_homes:
        gw.add_home(home.home_id, fleet_detectors[home.home_id], start=home.split)
    return gw


def test_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        FleetGateway(0)


def test_rejects_duplicate_home(gateway, fleet_homes, fleet_detectors):
    home = fleet_homes[0]
    with pytest.raises(ValueError, match="already hosted"):
        gateway.add_home(home.home_id, fleet_detectors[home.home_id])


def test_membership_and_layout(gateway, fleet_homes):
    assert len(gateway) == len(fleet_homes)
    for home in fleet_homes:
        assert home.home_id in gateway
        assert gateway.shard_index_of(home.home_id) == shard_of(home.home_id, 2)
    assert "home-9999" not in gateway
    assert gateway.home_ids == sorted(h.home_id for h in fleet_homes)


def test_unrouted_events_are_counted_not_fatal(gateway, fleet_homes):
    stray = next(iter(fleet_homes[0].live))
    fresh = gateway.dispatch([("no-such-home", stray)])
    assert fresh == []
    assert gateway.unrouted == 1
    snapshot = gateway.metrics.snapshot()["metrics"]
    assert snapshot[FLEET_UNROUTED_TOTAL]["series"][0]["value"] == 1


def test_dispatch_counts_events_per_shard(gateway, fleet_homes):
    replay_fleet(gateway, fleet_homes)
    series = gateway.metrics.snapshot()["metrics"][FLEET_EVENTS_TOTAL]["series"]
    per_shard = {row["labels"]["shard"]: row["value"] for row in series}
    total_live = sum(len(home.live) for home in fleet_homes)
    assert sum(per_shard.values()) == total_live


def test_health_rollup(gateway, fleet_homes):
    replay_fleet(gateway, fleet_homes)
    health = gateway.health()
    assert health["num_shards"] == 2
    assert health["num_homes"] == len(fleet_homes)
    assert sum(health["homes_per_shard"].values()) == len(fleet_homes)
    assert health["unrouted"] == 0
    assert set(health["homes"]) == set(gateway.home_ids)
    for home_id, entry in health["homes"].items():
        assert entry["shard"] == gateway.shard_index_of(home_id)
        assert entry["alerts"] == len(gateway.alerts_of(home_id))
    assert sum(health["alerts"].values()) == len(gateway.alerts)


def test_metrics_snapshot_merges_router_and_homes(gateway, fleet_homes):
    replay_fleet(gateway, fleet_homes)
    merged = gateway.metrics_snapshot()["metrics"]
    # Router families and per-home detection families land in one document.
    assert FLEET_EVENTS_TOTAL in merged
    assert "dice_alerts_total" in merged


def test_metrics_snapshot_counts_shared_registries_once(fleet_homes):
    # Two homes deliberately sharing one registry: the shared counter must
    # appear in the merged snapshot with its value, not doubled.
    from repro.core import DiceDetector

    shared = telemetry.MetricsRegistry()
    shared.counter("test_shared_total", "shared sink sentinel").inc(7)
    gw = FleetGateway(2)
    for home in fleet_homes[:2]:
        detector = DiceDetector(home.trace.registry, metrics=shared).fit(
            home.training
        )
        gw.add_home(home.home_id, detector, start=home.split)
    merged = gw.metrics_snapshot()["metrics"]
    assert merged["test_shared_total"]["series"][0]["value"] == 7


def test_finish_accepts_scalar_and_mapping(fleet_homes, fleet_detectors):
    ends = {home.home_id: home.trace.end for home in fleet_homes}
    by_map = FleetGateway(2)
    by_scalar = FleetGateway(2)
    for gw in (by_map, by_scalar):
        for home in fleet_homes:
            gw.add_home(
                home.home_id, fleet_detectors[home.home_id], start=home.split
            )
        replay_fleet(gw, fleet_homes, finish=False)
    by_map.finish(ends)
    by_scalar.finish(max(ends.values()))
    # Same end timestamp for every home here, so both spellings agree.
    assert len(by_map.alerts) == len(by_scalar.alerts)
