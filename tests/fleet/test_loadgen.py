"""The fleet load generator must be a pure function of its parameters."""

import pytest

from repro.fleet import build_fleet_homes, home_seed, merged_ticks


def _event_key(event):
    return (event.timestamp, event.device_id, event.value)


def test_build_is_deterministic():
    first = build_fleet_homes(3, seed=9, hours=26.0, train_hours=24.0)
    second = build_fleet_homes(3, seed=9, hours=26.0, train_hours=24.0)
    for a, b in zip(first, second):
        assert a.home_id == b.home_id
        assert a.split == b.split
        assert [_event_key(e) for e in a.trace] == [_event_key(e) for e in b.trace]


def test_homes_are_distinct():
    homes = build_fleet_homes(3, seed=9, hours=26.0, train_hours=24.0)
    assert len({h.home_id for h in homes}) == 3
    keys = [tuple(_event_key(e) for e in h.trace) for h in homes]
    assert len(set(keys)) == 3  # different seeds => different lives


def test_home_seed_is_injective_over_small_fleets():
    seeds = {home_seed(fleet, index) for fleet in range(4) for index in range(64)}
    assert len(seeds) == 4 * 64


def test_split_partitions_the_trace():
    # 24 -> 36 h live segment: spans a full day, so it cannot be empty for
    # any seed (a 2 h overnight tail can be).
    (home,) = build_fleet_homes(1, seed=2, hours=36.0, train_hours=24.0)
    training = list(home.training)
    live = list(home.live)
    assert len(training) + len(live) == len(home.trace)
    assert all(e.timestamp < home.split for e in training)
    assert all(e.timestamp >= home.split for e in live)
    assert live, "the live segment must be non-empty"


def test_build_rejects_bad_parameters():
    with pytest.raises(ValueError):
        build_fleet_homes(0)
    with pytest.raises(ValueError):
        build_fleet_homes(2, hours=10.0, train_hours=10.0)
    with pytest.raises(ValueError):
        build_fleet_homes(2, hours=10.0, train_hours=0.0)


def test_merged_ticks_ordering_and_coverage():
    homes = build_fleet_homes(3, seed=9, hours=26.0, train_hours=24.0)
    tick_seconds = 300.0
    per_home = {h.home_id: [] for h in homes}
    previous_tick = None
    total = 0
    for tick_start, batch in merged_ticks(homes, tick_seconds):
        assert batch, "empty ticks must be skipped"
        if previous_tick is not None:
            assert tick_start > previous_tick
        previous_tick = tick_start
        last_ts = None
        for home_id, event in batch:
            assert tick_start <= event.timestamp < tick_start + tick_seconds
            if last_ts is not None:
                assert event.timestamp >= last_ts  # sorted within the tick
            last_ts = event.timestamp
            per_home[home_id].append(event)
            total += 1
    # Every home's subsequence is exactly its live stream, in order.
    for home in homes:
        assert [_event_key(e) for e in per_home[home.home_id]] == [
            _event_key(e) for e in home.live
        ]
    assert total == sum(len(h.live) for h in homes)


def test_merged_ticks_rejects_bad_tick():
    homes = build_fleet_homes(1, seed=2, hours=26.0, train_hours=24.0)
    with pytest.raises(ValueError):
        list(merged_ticks(homes, 0.0))
