"""The acceptance guarantee: sharding is an invisible scaling layer.

A fleet run with shard count 1, 2 or 4 must produce, per home, exactly
the alert sequence that home's runtime produces standalone — same kinds,
times, checks, cases, devices, convergence flags, in the same order.
"""

import pytest

from repro.fleet import FleetGateway, replay_fleet
from repro.streaming import HardenedOnlineDice
from tests.fleet.conftest import canon


@pytest.fixture(scope="module")
def standalone_alerts(fleet_homes, fleet_detectors):
    """Per-home baselines: each home replayed alone, no fleet involved."""
    expected = {}
    for home in fleet_homes:
        runtime = HardenedOnlineDice(
            fleet_detectors[home.home_id], start=home.split
        )
        alerts = runtime.ingest_many(list(home.live))
        alerts += runtime.finish_stream(home.trace.end)
        expected[home.home_id] = canon(alerts)
    return expected


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_fleet_matches_standalone(
    num_shards, fleet_homes, fleet_detectors, standalone_alerts
):
    gateway = FleetGateway(num_shards)
    for home in fleet_homes:
        gateway.add_home(
            home.home_id, fleet_detectors[home.home_id], start=home.split
        )
    replay_fleet(gateway, fleet_homes)
    for home in fleet_homes:
        assert canon(gateway.alerts_of(home.home_id)) == (
            standalone_alerts[home.home_id]
        ), f"{home.home_id} diverged at {num_shards} shards"
    assert gateway.unrouted == 0


@pytest.mark.parametrize("tick_seconds", [60.0, 1800.0])
def test_tick_width_is_invisible_too(
    tick_seconds, fleet_homes, fleet_detectors, standalone_alerts
):
    # Dispatch batching is an implementation detail of the driver, not of
    # the detection semantics.
    gateway = FleetGateway(2)
    for home in fleet_homes:
        gateway.add_home(
            home.home_id, fleet_detectors[home.home_id], start=home.split
        )
    replay_fleet(gateway, fleet_homes, tick_seconds=tick_seconds)
    for home in fleet_homes:
        assert canon(gateway.alerts_of(home.home_id)) == (
            standalone_alerts[home.home_id]
        )


def test_fleet_alerts_attribute_their_home(fleet_homes, fleet_detectors):
    gateway = FleetGateway(4)
    for home in fleet_homes:
        gateway.add_home(
            home.home_id, fleet_detectors[home.home_id], start=home.split
        )
    alerts = replay_fleet(gateway, fleet_homes)
    assert alerts, "the fixture fleet is expected to raise alerts"
    hosted = set(gateway.home_ids)
    assert {fa.home_id for fa in alerts} <= hosted
    total = sum(len(gateway.alerts_of(home_id)) for home_id in hosted)
    assert total == len(gateway.alerts)
