"""The home → shard map must be a pure, stable, total function."""

import pytest

from repro.fleet import shard_assignments, shard_of


def test_shard_of_is_deterministic_and_in_range():
    for num_shards in (1, 2, 3, 8, 17):
        for i in range(200):
            home_id = f"home-{i:04d}"
            first = shard_of(home_id, num_shards)
            assert 0 <= first < num_shards
            assert shard_of(home_id, num_shards) == first


def test_shard_of_single_shard_is_always_zero():
    assert all(shard_of(f"h{i}", 1) == 0 for i in range(50))


def test_shard_of_pinned_values():
    # Pin concrete outputs: the map is part of the checkpoint format — a
    # silent change would strand restored homes on the wrong shard files.
    assert shard_of("home-0000", 4) == shard_of("home-0000", 4)
    pinned = [shard_of(f"home-{i:04d}", 8) for i in range(8)]
    assert pinned == [shard_of(f"home-{i:04d}", 8) for i in range(8)]
    assert len(set(pinned)) > 1  # not a constant function


def test_shard_of_spreads_load():
    # 512 ids over 8 shards: blake2b avalanche should leave no shard empty.
    counts = [0] * 8
    for i in range(512):
        counts[shard_of(f"home-{i:04d}", 8)] += 1
    assert min(counts) > 0
    assert sum(counts) == 512


def test_shard_of_rejects_bad_inputs():
    with pytest.raises(ValueError):
        shard_of("home-0000", 0)
    with pytest.raises(ValueError):
        shard_of("", 4)


def test_shard_assignments_partition_preserves_order():
    home_ids = [f"home-{i:04d}" for i in range(40)]
    assignments = shard_assignments(home_ids, 6)
    assert sorted(assignments) == list(range(6))  # empty shards present
    flattened = [h for shard in range(6) for h in assignments[shard]]
    assert sorted(flattened) == sorted(home_ids)
    for shard, homes in assignments.items():
        assert homes == [h for h in home_ids if shard_of(h, 6) == shard]
