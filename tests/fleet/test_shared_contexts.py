"""The capacity layers are invisible: shared contexts + batched tick.

Two guarantees are pinned here:

* **Content addressing is sound** — detectors fitted to the same data
  hash equal, interning dedups them onto one frozen model, and
  copy-on-write forking breaks the sharing loudly and privately.
* **Sharing changes nothing observable per home** — a randomized
  differential sweep (same stamped fleet, shared+batched vs fully
  replicated per-event) asserts byte-identical per-home alert sequences
  and identical per-home telemetry counters (modulo the deliberately
  shared cache/kernel accounting and wall-clock timings), including a
  home whose :class:`~repro.streaming.ContextRefresher` forks its
  context mid-stream.
"""

import json
import os
import random

import pytest

from repro import telemetry
from repro.core import (
    SharedContextStore,
    context_hash,
    trained_context_nbytes,
)
from repro.fleet import (
    FleetGateway,
    build_fleet_homes,
    fit_fleet_detectors,
    replay_fleet,
    restore_fleet,
)
from repro.fleet.checkpoint import MANIFEST_NAME
from repro.streaming import CheckpointError, RefreshPolicy
from tests.fleet.conftest import canon

SEED = 20260808

#: Counter families legitimately allowed to differ between the shared and
#: replicated arms: the correlation memo is shared across homes (hit/miss
#: patterns shift), the kernel/eviction deltas are published owner-only,
#: and the seconds totals are wall clock.
_EXCLUDED = ("cache", "kernel", "seconds")


def _null_metrics():
    return telemetry.NULL_REGISTRY


def _stamped(num_homes, unique, seed, hours=24.0, train_hours=18.0):
    return build_fleet_homes(
        num_homes, seed=seed, hours=hours, train_hours=train_hours,
        unique_homes=unique,
    )


# --------------------------------------------------------------------- #
# Content addressing
# --------------------------------------------------------------------- #


def test_context_hash_is_content_addressed(fleet_homes):
    first, second = fleet_homes[0], fleet_homes[1]
    d1 = first.fit_detector(metrics=telemetry.NULL_REGISTRY)
    d2 = first.fit_detector(metrics=telemetry.NULL_REGISTRY)
    other = second.fit_detector(metrics=telemetry.NULL_REGISTRY)
    assert context_hash(d1) == context_hash(d2)
    assert context_hash(d1) != context_hash(other)


def test_stamped_clones_hash_identical():
    homes = _stamped(4, 2, seed=9)
    detectors = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    hashes = [context_hash(detectors[h.home_id]) for h in homes]
    # home-0002/0003 are clones of 0000/0001 — same bytes, same hash.
    assert hashes[0] == hashes[2]
    assert hashes[1] == hashes[3]
    assert hashes[0] != hashes[1]


def test_intern_dedups_onto_one_frozen_model():
    homes = _stamped(2, 1, seed=11)
    detectors = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    d1, d2 = (detectors[h.home_id] for h in homes)
    store = SharedContextStore()
    shared = store.intern(d1)
    assert store.intern(d2) is shared
    assert len(store) == 1
    assert shared.holders == 2
    assert d1.model is d2.model
    assert store.stats()["intern_hits"] == 1
    with pytest.raises(RuntimeError):
        d1.model.groups.add(0b1)


def test_fork_context_is_copy_on_write():
    homes = _stamped(2, 1, seed=11)
    detectors = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    d1, d2 = (detectors[h.home_id] for h in homes)
    store = SharedContextStore()
    store.intern(d1)
    store.intern(d2)
    shared_model = d2.model
    groups_before = len(shared_model.groups)
    assert d1.fork_context()
    assert d1.model is not shared_model
    assert d2.model is shared_model
    # The fork is private and unfrozen; the shared copy is untouched.
    novel = (1 << groups_before) | 1
    d1.model.groups.add(novel)
    assert len(shared_model.groups) == groups_before
    assert len(d1.model.groups) == groups_before + 1
    # Forking twice is a no-op — already private.
    assert not d1.fork_context()


def test_memory_report_accounts_for_dedup():
    homes = _stamped(6, 2, seed=13)
    detectors = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    gateway = FleetGateway(2, metrics=telemetry.NULL_REGISTRY)
    for home in homes:
        gateway.add_home(home.home_id, detectors[home.home_id], start=home.split)
    report = gateway.memory_report()
    assert report["homes"] == 6
    assert report["distinct_contexts"] == 2
    assert report["savings_ratio"] == pytest.approx(3.0)
    assert report["trained_bytes_replicated"] == pytest.approx(
        3 * report["trained_bytes_shared"]
    )
    # The estimator agrees with summing the canonical contexts directly.
    per_home = {h.home_id: trained_context_nbytes(detectors[h.home_id]) for h in homes}
    assert report["trained_bytes_replicated"] == sum(per_home.values())
    assert report["store"]["contexts"] == 2
    assert report["store"]["holders"] == 6


# --------------------------------------------------------------------- #
# Differential sweep: shared+batched vs fully replicated
# --------------------------------------------------------------------- #


def _comparable_counters(metrics) -> dict:
    """Per-home counter values minus the families allowed to differ."""
    snapshot = metrics.counters_snapshot()["metrics"]
    out = {}
    for name, entry in snapshot.items():
        if any(word in name for word in _EXCLUDED):
            continue
        for row in entry["series"]:
            labels = tuple(sorted(row.get("labels", {}).items()))
            out[(name, labels)] = row["value"]
    return out


def _run_fleet(homes, *, share, shards, tick, refresh_home, refresh_policy):
    detectors = fit_fleet_detectors(homes)
    gateway = FleetGateway(
        shards,
        metrics=telemetry.NULL_REGISTRY,
        share_contexts=share,
        batch_tick=share,
    )
    for home in homes:
        kwargs = {}
        if home.home_id == refresh_home:
            kwargs["refresh"] = refresh_policy
        gateway.add_home(
            home.home_id, detectors[home.home_id], start=home.split, **kwargs
        )
    replay_fleet(gateway, homes, tick_seconds=tick)
    canons = {h.home_id: canon(gateway.alerts_of(h.home_id)) for h in homes}
    counters = {
        h.home_id: _comparable_counters(gateway.runtime_of(h.home_id).metrics)
        for h in homes
    }
    return gateway, canons, counters


@pytest.mark.parametrize("trial", range(3))
def test_sharing_and_batching_are_invisible(trial):
    rng = random.Random(SEED + trial)
    num_homes = rng.choice([4, 6])
    unique = rng.choice([2, 3])
    homes = _stamped(num_homes, unique, seed=rng.randrange(1000))
    shards = rng.choice([1, 3])
    tick = rng.choice([60.0, 300.0, 1800.0])
    refresh_home = homes[rng.randrange(num_homes)].home_id
    # Aggressive refresh so the chosen home plausibly forks mid-stream;
    # parity must hold whether or not it fires.
    policy = RefreshPolicy(
        enabled=True, violation_window=5, violation_threshold=0.2,
        collect_windows=2, cooldown_windows=5,
    )
    shared_gw, shared_canons, shared_counters = _run_fleet(
        homes, share=True, shards=shards, tick=tick,
        refresh_home=refresh_home, refresh_policy=policy,
    )
    _, plain_canons, plain_counters = _run_fleet(
        homes, share=False, shards=shards, tick=tick,
        refresh_home=refresh_home, refresh_policy=policy,
    )
    assert shared_canons == plain_canons
    assert shared_counters == plain_counters
    # Dedup really happened in the shared arm.
    assert shared_gw.memory_report()["distinct_contexts"] <= unique + 1


def test_midstream_refresh_forks_only_its_home():
    homes = _stamped(4, 2, seed=29)
    policy = RefreshPolicy(
        enabled=True, violation_window=5, violation_threshold=0.2,
        collect_windows=2, cooldown_windows=5,
    )
    refresh_home = homes[0].home_id
    gateway, _, _ = _run_fleet(
        homes, share=True, shards=2, tick=300.0,
        refresh_home=refresh_home, refresh_policy=policy,
    )
    refreshed = gateway.runtime_of(refresh_home)
    assert refreshed.refresher.stats()["applied"] >= 1, (
        "fixture stream was expected to trigger a refresh; pick another seed"
    )
    twin = homes[2].home_id  # stamped from the same archetype
    assert gateway.runtime_of(twin).detector.model is not refreshed.detector.model
    # The untouched homes still share their archetype's frozen context.
    report = gateway.memory_report()
    assert report["distinct_contexts"] == 3  # 2 archetypes + 1 private fork


# --------------------------------------------------------------------- #
# Checkpoint context-hash validation
# --------------------------------------------------------------------- #


def test_restore_rejects_tampered_context_hash(tmp_path):
    homes = _stamped(2, 2, seed=17, hours=20.0, train_hours=16.0)
    detectors = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    gateway = FleetGateway(2, metrics=telemetry.NULL_REGISTRY)
    for home in homes:
        gateway.add_home(home.home_id, detectors[home.home_id], start=home.split)
    directory = tmp_path / "ck"
    gateway.save_checkpoint(directory)

    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    victim = homes[0].home_id
    recorded = manifest["homes"][victim]["context"]
    assert recorded == context_hash(detectors[victim])
    manifest["homes"][victim]["context"] = "0" * 32
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)

    with pytest.raises(CheckpointError) as excinfo:
        restore_fleet(detectors, directory)
    message = str(excinfo.value)
    assert victim in message
    assert "0" * 32 in message
    assert context_hash(detectors[victim]) in message


def test_restore_reinterns_shared_contexts(tmp_path):
    homes = _stamped(4, 2, seed=19, hours=20.0, train_hours=16.0)
    detectors = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    gateway = FleetGateway(2, metrics=telemetry.NULL_REGISTRY)
    for home in homes:
        gateway.add_home(home.home_id, detectors[home.home_id], start=home.split)
    replay_fleet(gateway, homes, finish=False)
    directory = tmp_path / "ck"
    gateway.save_checkpoint(directory)

    fresh = fit_fleet_detectors(homes, metrics_factory=_null_metrics)
    restored = restore_fleet(fresh, directory, num_shards=3)
    report = restored.memory_report()
    assert report["homes"] == 4
    assert report["distinct_contexts"] == 2
    assert report["savings_ratio"] == pytest.approx(2.0)
