"""Regenerate the committed golden fixtures.

Run from the repository root:

    PYTHONPATH=src python -m tests.golden.regen

Each fixture is a complete end-to-end scenario pinned into version
control: a 36 h houseA simulation (seed 7) with one fault injected into
the ``fridge`` sensor at hour 26, serialized as a trace CSV (plus its
device registry), and the exact alerts the batch pipeline derives from
it (fit on hours 0-24, process hours 24-36) in an expected-alerts JSON.

Two fault renderings are pinned:

* **fail_stop** (``trace.csv`` / ``expected_alerts.json``) — the fridge
  goes silent; the correlation check catches the missing co-activation;
* **stuck_at** (``trace_stuckat.csv`` / ``expected_alerts_stuckat.json``)
  — the fridge sticks *active* and fires around the clock, the
  non-fail-stop footprint the paper needs the transition/correlation
  interplay for.

Regenerating is only legitimate when the detection semantics change on
purpose; the diff of the expected-alerts JSON then documents precisely
what moved, and the reviewer signs off on it like any other behavioural
change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.core import DiceDetector
from repro.datasets import load_dataset
from repro.datasets.io import write_trace
from repro.faults import FaultType, InjectedFault, apply_fault

HERE = os.path.dirname(os.path.abspath(__file__))

DATASET = "houseA"
SEED = 7
HOURS = 36.0
TRAIN_HOURS = 24.0
FAULT_DEVICE = "fridge"
FAULT_ONSET_HOURS = 26.0


@dataclass(frozen=True)
class GoldenFixture:
    """One pinned end-to-end scenario."""

    fault_type: FaultType
    trace_filename: str
    expected_filename: str

    @property
    def trace_csv(self) -> str:
        return os.path.join(HERE, self.trace_filename)

    @property
    def expected_json(self) -> str:
        return os.path.join(HERE, self.expected_filename)


FIXTURES = (
    GoldenFixture(FaultType.FAIL_STOP, "trace.csv", "expected_alerts.json"),
    GoldenFixture(
        FaultType.STUCK_AT, "trace_stuckat.csv", "expected_alerts_stuckat.json"
    ),
)

# Legacy aliases for the original single-fixture layout.
TRACE_CSV = FIXTURES[0].trace_csv
EXPECTED_JSON = FIXTURES[0].expected_json

# -- markov-backend golden ----------------------------------------------- #
# The fail-stop fixture replayed through the Markov backend.  A per-device
# transition chain has no cross-device context, so a fail-stopped fridge —
# which DICE's correlation check catches (see expected_alerts.json) —
# produces *no* novel transitions and the pinned alert list is empty.
# The fixture still bites: it pins the fitted model's fingerprint and
# content hash on the committed trace (any encoding or chain-counting
# drift shows as a diff) and pins that the backend raises no false
# positives on the healthy remainder of the stream.
MARKOV_EXPECTED_JSON = os.path.join(HERE, "expected_alerts_markov.json")

# -- streaming / explain golden ----------------------------------------- #
# A third pinned artifact: the evidence record ``repro explain`` renders
# for the first detection when the committed fail-stop trace is replayed
# through the CLI gateway.  The supervisor thresholds are effectively
# disabled because the simulated live segment is sparse (tens of events
# over 12 h) — the default policy would quarantine every device and the
# run would yield only health alerts.
EXPLAIN_JSON = os.path.join(HERE, "expected_explain.json")
EXPLAIN_SILENCE = 1_000_000.0
EXPLAIN_QUARANTINE = 2_000_000.0


def explain_stream_args(provenance_out: str, *extra: str) -> list:
    """CLI argv replaying the committed trace with provenance capture —
    exactly what the CI explain-smoke job runs."""
    return [
        "stream",
        DATASET,
        "--input-csv",
        TRACE_CSV,
        "--hours",
        str(HOURS),
        "--train-hours",
        str(TRAIN_HOURS),
        "--silence",
        str(EXPLAIN_SILENCE),
        "--quarantine",
        str(EXPLAIN_QUARANTINE),
        "--provenance-out",
        provenance_out,
        *extra,
    ]


def run_explain_stream(provenance_out: str, *extra: str) -> int:
    from repro.cli import main as cli_main

    return cli_main(explain_stream_args(provenance_out, *extra))


def read_provenance_jsonl(path: str) -> list:
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def first_detection(records: list) -> dict:
    for record in records:
        if record["alert"]["kind"] == "detection":
            return record
    raise ValueError("no detection record in the provenance stream")


def explain_document_bytes(record: dict) -> bytes:
    """Byte-exact ``repro explain <id> --json`` output (newline included)."""
    return (json.dumps(record, indent=2, sort_keys=True) + "\n").encode("utf-8")


def build_trace(fixture: GoldenFixture = FIXTURES[0]):
    """The scenario: simulated houseA with a live-phase device fault."""
    dataset = load_dataset(DATASET, seed=SEED, hours=HOURS)
    return apply_fault(
        dataset.trace,
        InjectedFault(FAULT_DEVICE, fixture.fault_type, FAULT_ONSET_HOURS * 3600.0),
        np.random.default_rng(SEED),
    )


def run_pipeline(trace):
    """Fit on the training prefix, process the live suffix."""
    split = TRAIN_HOURS * 3600.0
    detector = DiceDetector(trace.registry).fit(trace.slice(0.0, split))
    return detector.process(trace.slice(split, trace.end))


def report_as_json(report, fixture: GoldenFixture = FIXTURES[0]) -> dict:
    return {
        "scenario": {
            "dataset": DATASET,
            "seed": SEED,
            "hours": HOURS,
            "train_hours": TRAIN_HOURS,
            "fault": {
                "type": fixture.fault_type.value,
                "device": FAULT_DEVICE,
                "onset_hours": FAULT_ONSET_HOURS,
            },
        },
        "n_windows": report.n_windows,
        "window_seconds": report.window_seconds,
        "detections": [
            {
                "window": r.window,
                "time": r.time,
                "check": r.check,
                "cases": [case.value for case in r.cases],
            }
            for r in report.detections
        ],
        "identifications": [
            {
                "window": r.window,
                "time": r.time,
                "devices": sorted(r.devices),
                "windows_used": r.windows_used,
                "converged": r.converged,
                "weighted_early": r.weighted_early,
                "triggered_by": r.triggered_by,
            }
            for r in report.identifications
        ],
    }


def markov_document() -> dict:
    """The Markov-backend golden document over the committed fail-stop
    trace: fit on hours 0-24, stream hours 24-36 through the online
    runtime, and pin model identity alongside the alerts."""
    from repro.core import create_backend
    from repro.datasets.io import read_trace
    from repro.streaming import OnlineDice

    trace = read_trace(FIXTURES[0].trace_csv)
    split = TRAIN_HOURS * 3600.0
    backend = create_backend("markov", trace.registry).fit(
        trace.slice(0.0, split)
    )
    alerts = OnlineDice(backend, start=split).replay(
        trace.slice(split, trace.end)
    )
    return {
        "scenario": {
            "backend": "markov",
            "dataset": DATASET,
            "seed": SEED,
            "hours": HOURS,
            "train_hours": TRAIN_HOURS,
            "fault": {
                "type": FIXTURES[0].fault_type.value,
                "device": FAULT_DEVICE,
                "onset_hours": FAULT_ONSET_HOURS,
            },
        },
        "model": {
            "fingerprint": backend.fingerprint(),
            "context_hash": backend.context_hash(),
        },
        "alerts": [
            {
                "kind": a.kind,
                "time": a.time,
                "check": a.check,
                "cases": [case.value for case in a.cases],
                "devices": sorted(a.devices),
                "converged": a.converged,
            }
            for a in alerts
        ],
    }


def markov_document_bytes(document: dict) -> bytes:
    return (json.dumps(document, indent=2) + "\n").encode("utf-8")


def regen_markov_golden() -> dict:
    document = markov_document()
    with open(MARKOV_EXPECTED_JSON, "wb") as fh:
        fh.write(markov_document_bytes(document))
    print(
        f"markov: pinned {len(document['alerts'])} alerts, "
        f"context {document['model']['context_hash']}"
    )
    return document


def regen_explain_golden() -> dict:
    """Replay the committed trace through the CLI and pin the first
    detection's evidence record as the explain golden."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        provenance_path = os.path.join(tmp, "provenance.jsonl")
        status = run_explain_stream(provenance_path)
        if status != 0:
            raise RuntimeError(f"explain-golden stream exited {status}")
        records = read_provenance_jsonl(provenance_path)
    record = first_detection(records)
    with open(EXPLAIN_JSON, "wb") as fh:
        fh.write(explain_document_bytes(record))
    print(
        f"explain: pinned detection {record['id']} "
        f"(seq {record['alert']['seq']}, {len(records)} records streamed)"
    )
    return record


def main() -> None:
    for fixture in FIXTURES:
        trace = build_trace(fixture)
        write_trace(trace, fixture.trace_csv)
        document = report_as_json(run_pipeline(trace), fixture)
        with open(fixture.expected_json, "w") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(
            f"{fixture.fault_type.value}: wrote {len(trace)} events, "
            f"{len(document['detections'])} detections, "
            f"{len(document['identifications'])} identifications"
        )
    regen_markov_golden()
    regen_explain_golden()


if __name__ == "__main__":
    main()
