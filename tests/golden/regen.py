"""Regenerate the committed golden fixture.

Run from the repository root:

    PYTHONPATH=src python -m tests.golden.regen

The fixture is a complete end-to-end scenario pinned into version
control: a 36 h houseA simulation (seed 7) with a fail-stop fault
injected into the ``fridge`` sensor at hour 26, serialized as
``trace.csv`` + ``trace.devices.csv``, and the exact alerts the batch
pipeline derives from it (fit on hours 0-24, process hours 24-36) in
``expected_alerts.json``.

Regenerating is only legitimate when the detection semantics change on
purpose; the diff of ``expected_alerts.json`` then documents precisely
what moved, and the reviewer signs off on it like any other behavioural
change.
"""

from __future__ import annotations

import json
import os

from repro.core import DiceDetector
from repro.datasets import load_dataset
from repro.datasets.io import write_trace
from repro.faults import inject_fail_stop

HERE = os.path.dirname(os.path.abspath(__file__))
TRACE_CSV = os.path.join(HERE, "trace.csv")
EXPECTED_JSON = os.path.join(HERE, "expected_alerts.json")

DATASET = "houseA"
SEED = 7
HOURS = 36.0
TRAIN_HOURS = 24.0
FAULT_DEVICE = "fridge"
FAULT_ONSET_HOURS = 26.0


def build_trace():
    """The scenario: simulated houseA with a live-phase fail-stop."""
    dataset = load_dataset(DATASET, seed=SEED, hours=HOURS)
    return inject_fail_stop(
        dataset.trace, FAULT_DEVICE, FAULT_ONSET_HOURS * 3600.0
    )


def run_pipeline(trace):
    """Fit on the training prefix, process the live suffix."""
    split = TRAIN_HOURS * 3600.0
    detector = DiceDetector(trace.registry).fit(trace.slice(0.0, split))
    return detector.process(trace.slice(split, trace.end))


def report_as_json(report) -> dict:
    return {
        "scenario": {
            "dataset": DATASET,
            "seed": SEED,
            "hours": HOURS,
            "train_hours": TRAIN_HOURS,
            "fault": {
                "type": "fail_stop",
                "device": FAULT_DEVICE,
                "onset_hours": FAULT_ONSET_HOURS,
            },
        },
        "n_windows": report.n_windows,
        "window_seconds": report.window_seconds,
        "detections": [
            {
                "window": r.window,
                "time": r.time,
                "check": r.check,
                "cases": [case.value for case in r.cases],
            }
            for r in report.detections
        ],
        "identifications": [
            {
                "window": r.window,
                "time": r.time,
                "devices": sorted(r.devices),
                "windows_used": r.windows_used,
                "converged": r.converged,
                "weighted_early": r.weighted_early,
                "triggered_by": r.triggered_by,
            }
            for r in report.identifications
        ],
    }


def main() -> None:
    trace = build_trace()
    write_trace(trace, TRACE_CSV)
    document = report_as_json(run_pipeline(trace))
    with open(EXPECTED_JSON, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(
        f"wrote {len(trace)} events, "
        f"{len(document['detections'])} detections, "
        f"{len(document['identifications'])} identifications"
    )


if __name__ == "__main__":
    main()
