"""Golden provenance fixtures: committed trace in, committed evidence out.

The explain golden pins the *observability* half of the pipeline the way
``expected_alerts.json`` pins detection semantics: replaying the committed
fail-stop trace through the CLI gateway must reproduce the committed
evidence record for the first detection byte for byte — twice in a row,
and across a ``--save-checkpoint`` / ``--resume`` cut.  CI runs the same
flow through the real ``repro`` entry point and ``cmp``s the files.

Regenerate (deliberately!) with ``PYTHONPATH=src python -m tests.golden.regen``.
"""

import json
import os

from repro.cli import main

from tests.golden import regen


def _committed_explain() -> bytes:
    with open(regen.EXPLAIN_JSON, "rb") as fh:
        return fh.read()


def _stream(tmp_path, name: str, *extra: str) -> str:
    out = str(tmp_path / name)
    assert main(regen.explain_stream_args(out, *extra)) == 0
    return out


class TestProvenanceDeterminism:
    def test_two_runs_are_byte_identical(self, tmp_path):
        first = _stream(tmp_path, "run1.jsonl")
        second = _stream(tmp_path, "run2.jsonl")
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()

    def test_checkpoint_cut_is_byte_identical(self, tmp_path):
        # An uninterrupted run vs the same stream cut by a checkpoint:
        # --save-checkpoint leaves the stream open (reorder tail pending,
        # session state live), --resume picks it up past the watermark and
        # finishes.  The resumed run's archive must match the full run's.
        full = _stream(tmp_path, "full.jsonl")
        ckpt = str(tmp_path / "cut.ckpt.json")
        _stream(tmp_path, "part.jsonl", "--save-checkpoint", ckpt)
        resumed = _stream(tmp_path, "resumed.jsonl", "--resume", ckpt)
        with open(full, "rb") as a, open(resumed, "rb") as b:
            assert a.read() == b.read()

    def test_trace_ids_are_stable_content_hashes(self, tmp_path):
        records = regen.read_provenance_jsonl(_stream(tmp_path, "ids.jsonl"))
        assert records, "stream must produce provenance records"
        from repro.telemetry.provenance import trace_id

        for record in records:
            assert record["id"] == trace_id(record["alert"])
        assert len({r["id"] for r in records}) == len(records)


class TestCommittedGolden:
    def test_first_detection_matches_committed_record(self, tmp_path):
        records = regen.read_provenance_jsonl(_stream(tmp_path, "prov.jsonl"))
        record = regen.first_detection(records)
        assert regen.explain_document_bytes(record) == _committed_explain()

    def test_explain_cli_renders_committed_record(self, tmp_path, capsys):
        provenance = _stream(tmp_path, "prov.jsonl")
        committed = json.loads(_committed_explain())
        capsys.readouterr()  # drop the stream command's own output
        assert main(
            ["explain", committed["id"], "--provenance", provenance, "--json"]
        ) == 0
        out = capsys.readouterr().out
        assert out.encode("utf-8") == _committed_explain()

    def test_explain_narrative_names_the_cause(self, tmp_path, capsys):
        provenance = _stream(tmp_path, "prov.jsonl")
        committed = json.loads(_committed_explain())
        capsys.readouterr()
        assert main(["explain", committed["id"], "--provenance", provenance]) == 0
        out = capsys.readouterr().out
        assert committed["id"] in out
        assert "correlation violation" in out
        assert "detection latency" in out

    def test_committed_golden_documents_the_fault_scenario(self):
        # Sanity on the fixture itself: first detection of the fail-stop
        # scenario — a correlation violation after the fridge goes silent.
        record = json.loads(_committed_explain())
        assert record["schema"] == "dice-provenance/1"
        assert record["alert"]["kind"] == "detection"
        assert record["alert"]["check"] == "correlation"
        assert record["alert"]["home"] == regen.DATASET
        onset = regen.FAULT_ONSET_HOURS * 3600.0
        assert record["alert"]["time"] >= onset
        assert record["windows"], "detection must carry window evidence"
        assert record["windows"][0]["correlation"]["violation"] is True


class TestExplainJournal:
    def test_explain_reads_the_durable_archive(self, tmp_path, capsys):
        journal_dir = str(tmp_path / "journal")
        _stream(tmp_path, "prov.jsonl", "--journal-dir", journal_dir)
        assert os.path.exists(os.path.join(journal_dir, "provenance.wal"))
        committed = json.loads(_committed_explain())
        capsys.readouterr()
        assert main(
            ["explain", committed["id"], "--journal-dir", journal_dir, "--json"]
        ) == 0
        out = capsys.readouterr().out
        assert out.encode("utf-8") == _committed_explain()

    def test_unknown_selector_fails_cleanly(self, tmp_path, capsys):
        provenance = _stream(tmp_path, "prov.jsonl")
        capsys.readouterr()
        assert main(
            ["explain", "ffffffffffffffff", "--provenance", provenance]
        ) == 1
