"""Golden end-to-end fixtures: committed trace in, committed alerts out.

The fixtures under ``tests/golden/`` pin the full pipeline — simulator,
fault injector, CSV round-trip, detector fit, batch processing — to an
exact, reviewed output, once per pinned fault rendering (a fail-stop and
a stuck-at).  Any semantic drift anywhere in that chain shows up here as
a diff against the expected-alerts JSON.

Regenerate (deliberately!) with ``PYTHONPATH=src python -m tests.golden.regen``.
"""

import json

import pytest

from repro.datasets.io import read_trace

from tests.golden import regen


@pytest.fixture(params=regen.FIXTURES, ids=lambda f: f.fault_type.value)
def fixture(request):
    return request.param


def _expected(fixture):
    with open(fixture.expected_json) as fh:
        return json.load(fh)


def test_pipeline_reproduces_committed_alerts(fixture):
    trace = read_trace(fixture.trace_csv)
    report = regen.run_pipeline(trace)
    assert regen.report_as_json(report, fixture) == _expected(fixture)


def test_simulator_reproduces_committed_trace(fixture):
    # The committed CSV is itself a pinned artifact: the seeded simulator
    # plus the fault injector must rebuild it event for event, and the CSV
    # round-trip must be lossless (repr-exact floats).
    rebuilt = regen.build_trace(fixture)
    committed = read_trace(fixture.trace_csv)
    assert committed.registry.device_ids == rebuilt.registry.device_ids
    assert (committed.start, committed.end) == (rebuilt.start, rebuilt.end)
    assert len(committed) == len(rebuilt)
    assert [
        (e.timestamp, e.device_id, e.value) for e in committed
    ] == [(e.timestamp, e.device_id, e.value) for e in rebuilt]


def test_expected_alerts_identify_the_faulted_device(fixture):
    # Sanity on the fixtures themselves: each scenario documents a fridge
    # fault, and the committed alerts must actually say so.
    expected = _expected(fixture)
    assert expected["detections"], "fixture must contain detections"
    assert expected["identifications"], "fixture must contain identifications"
    assert expected["scenario"]["fault"]["type"] == fixture.fault_type.value
    fault_device = expected["scenario"]["fault"]["device"]
    onset = expected["scenario"]["fault"]["onset_hours"] * 3600.0
    for record in expected["identifications"]:
        assert record["devices"] == [fault_device]
        assert record["time"] >= onset


class TestMarkovGolden:
    """The Markov-backend fixture: the documented *contrast* to DICE.

    A per-device transition chain has no cross-device context, so the
    fail-stopped fridge that DICE detects produces no alerts here — the
    fixture pins that silence (no false positives either) plus the fitted
    model's fingerprint and content hash on the committed trace.
    """

    def test_pipeline_reproduces_committed_document(self):
        document = regen.markov_document()
        with open(regen.MARKOV_EXPECTED_JSON, "rb") as fh:
            assert regen.markov_document_bytes(document) == fh.read()

    def test_two_runs_are_byte_identical(self):
        assert regen.markov_document_bytes(regen.markov_document()) == (
            regen.markov_document_bytes(regen.markov_document())
        )

    def test_contrast_with_dice_is_pinned(self):
        # Same committed trace, same fault: DICE's correlation check
        # detects and blames the fridge; the context-free Markov chain
        # stays silent.  This is the paper's context-extraction claim,
        # pinned as data.
        with open(regen.MARKOV_EXPECTED_JSON, encoding="utf-8") as fh:
            markov = json.load(fh)
        assert markov["alerts"] == []
        dice = _expected(regen.FIXTURES[0])
        assert dice["detections"]
        assert dice["identifications"]


def test_fixtures_differ():
    # The two fixtures must pin *different* behaviour: a stuck-active
    # fridge keeps reporting (more events than the base trace), a
    # fail-stopped one goes quiet.
    fail_stop, stuck_at = regen.FIXTURES
    assert len(read_trace(stuck_at.trace_csv)) > len(
        read_trace(fail_stop.trace_csv)
    )
