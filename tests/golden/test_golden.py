"""Golden end-to-end fixture: committed trace in, committed alerts out.

The fixture under ``tests/golden/`` pins the full pipeline — simulator,
fault injector, CSV round-trip, detector fit, batch processing — to an
exact, reviewed output.  Any semantic drift anywhere in that chain shows
up here as a diff against ``expected_alerts.json``.

Regenerate (deliberately!) with ``PYTHONPATH=src python -m tests.golden.regen``.
"""

import json
import os

from repro.datasets.io import read_trace

from tests.golden import regen

HERE = os.path.dirname(os.path.abspath(__file__))


def _expected():
    with open(os.path.join(HERE, "expected_alerts.json")) as fh:
        return json.load(fh)


def test_pipeline_reproduces_committed_alerts():
    trace = read_trace(regen.TRACE_CSV)
    report = regen.run_pipeline(trace)
    assert regen.report_as_json(report) == _expected()


def test_simulator_reproduces_committed_trace():
    # The committed CSV is itself a pinned artifact: the seeded simulator
    # plus the fault injector must rebuild it event for event, and the CSV
    # round-trip must be lossless (repr-exact floats).
    rebuilt = regen.build_trace()
    committed = read_trace(regen.TRACE_CSV)
    assert committed.registry.device_ids == rebuilt.registry.device_ids
    assert (committed.start, committed.end) == (rebuilt.start, rebuilt.end)
    assert len(committed) == len(rebuilt)
    assert [
        (e.timestamp, e.device_id, e.value) for e in committed
    ] == [(e.timestamp, e.device_id, e.value) for e in rebuilt]


def test_expected_alerts_identify_the_faulted_device():
    # Sanity on the fixture itself: the scenario documents a fridge
    # fail-stop, and the committed alerts must actually say so.
    expected = _expected()
    assert expected["detections"], "fixture must contain detections"
    assert expected["identifications"], "fixture must contain identifications"
    fault_device = expected["scenario"]["fault"]["device"]
    onset = expected["scenario"]["fault"]["onset_hours"] * 3600.0
    for record in expected["identifications"]:
        assert record["devices"] == [fault_device]
        assert record["time"] >= onset
