"""Unit tests for the device taxonomy and registry."""

import pytest

from repro.model import (
    ACTUATOR_TYPES,
    BINARY_TYPES,
    NUMERIC_TYPES,
    Device,
    DeviceKind,
    DeviceRegistry,
    SensorType,
    actuator,
    binary_sensor,
    numeric_sensor,
)


class TestDevice:
    def test_binary_sensor_properties(self):
        device = binary_sensor("m1", SensorType.MOTION, "kitchen")
        assert device.is_sensor
        assert not device.is_actuator
        assert device.is_binary

    def test_numeric_sensor_properties(self):
        device = numeric_sensor("t1", SensorType.TEMPERATURE, "kitchen")
        assert device.is_sensor
        assert not device.is_binary

    def test_actuator_properties(self):
        device = actuator("hue", SensorType.BULB, "kitchen")
        assert device.is_actuator
        assert not device.is_sensor
        assert device.is_binary

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Device("", DeviceKind.BINARY_SENSOR, SensorType.MOTION)

    def test_actuator_kind_requires_actuator_type(self):
        with pytest.raises(ValueError):
            Device("x", DeviceKind.ACTUATOR, SensorType.MOTION)

    def test_sensor_kind_rejects_actuator_type(self):
        with pytest.raises(ValueError):
            Device("x", DeviceKind.BINARY_SENSOR, SensorType.BULB)

    def test_type_partitions_are_disjoint(self):
        assert not (NUMERIC_TYPES & BINARY_TYPES)
        assert not (NUMERIC_TYPES & ACTUATOR_TYPES)
        assert not (BINARY_TYPES & ACTUATOR_TYPES)


class TestDeviceRegistry:
    def test_insertion_order_and_index(self):
        registry = DeviceRegistry()
        assert registry.add(binary_sensor("a", SensorType.MOTION)) == 0
        assert registry.add(numeric_sensor("b", SensorType.LIGHT)) == 1
        assert registry.index_of("a") == 0
        assert registry.index_of("b") == 1
        assert registry.device_ids == ["a", "b"]

    def test_duplicate_id_rejected(self):
        registry = DeviceRegistry([binary_sensor("a", SensorType.MOTION)])
        with pytest.raises(ValueError):
            registry.add(numeric_sensor("a", SensorType.LIGHT))

    def test_lookup_by_name_and_index(self, registry):
        assert registry["motion_kitchen"].sensor_type is SensorType.MOTION
        assert registry[0].device_id == "motion_kitchen"
        assert registry.get("nope") is None
        assert "motion_kitchen" in registry
        assert "nope" not in registry

    def test_census(self, registry):
        assert registry.census() == (2, 1, 1)

    def test_kind_filters(self, registry):
        assert [d.device_id for d in registry.binary_sensors()] == [
            "motion_kitchen",
            "motion_bedroom",
        ]
        assert [d.device_id for d in registry.numeric_sensors()] == ["temp_kitchen"]
        assert [d.device_id for d in registry.actuators()] == ["hue_kitchen"]
        assert len(registry.sensors()) == 3

    def test_by_room_and_type(self, registry):
        assert len(registry.by_room("kitchen")) == 3
        assert len(registry.by_type(SensorType.MOTION)) == 2

    def test_subset_preserves_order(self, registry):
        sub = registry.subset(["temp_kitchen", "motion_kitchen"])
        assert sub.device_ids == ["motion_kitchen", "temp_kitchen"]

    def test_subset_unknown_id(self, registry):
        with pytest.raises(KeyError):
            registry.subset(["ghost"])
