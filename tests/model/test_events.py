"""Unit tests for event primitives."""

from repro.model import OFF, ON, Event, hours, seconds


class TestEvent:
    def test_activation(self):
        assert Event(0.0, "s", ON).is_active
        assert not Event(0.0, "s", OFF).is_active

    def test_ordering_is_time_major(self):
        a = Event(1.0, "z", 0.0)
        b = Event(2.0, "a", 0.0)
        assert a < b

    def test_ordering_breaks_ties_by_device(self):
        a = Event(1.0, "a", 0.0)
        b = Event(1.0, "b", 0.0)
        assert a < b

    def test_shifted(self):
        event = Event(10.0, "s", 1.0)
        moved = event.shifted(5.0)
        assert moved.timestamp == 15.0
        assert moved.device_id == "s"


class TestEventValidity:
    def test_well_formed_event(self):
        event = Event(1.0, "s", 2.5)
        assert event.is_valid()
        assert event.invalid_reason() is None

    def test_nan_value(self):
        event = Event(1.0, "s", float("nan"))
        assert not event.is_valid()
        assert event.invalid_reason() == "non_finite_value"

    def test_inf_value(self):
        assert Event(1.0, "s", float("inf")).invalid_reason() == "non_finite_value"
        assert Event(1.0, "s", float("-inf")).invalid_reason() == "non_finite_value"

    def test_nan_timestamp(self):
        event = Event(float("nan"), "s", 1.0)
        assert event.invalid_reason() == "non_finite_timestamp"

    def test_inf_timestamp(self):
        event = Event(float("inf"), "s", 1.0)
        assert event.invalid_reason() == "non_finite_timestamp"

    def test_empty_device_id(self):
        event = Event(1.0, "", 1.0)
        assert event.invalid_reason() == "empty_device_id"

    def test_device_id_checked_before_numbers(self):
        """An event broken in several ways reports the id problem first."""
        event = Event(float("nan"), "", float("nan"))
        assert event.invalid_reason() == "empty_device_id"

    def test_negative_timestamp_is_valid(self):
        """Traces may legitimately start before zero (rebased segments)."""
        assert Event(-5.0, "s", 1.0).is_valid()


class TestTimeHelpers:
    def test_seconds(self):
        assert seconds(hours=1) == 3600.0
        assert seconds(minutes=2, secs=30) == 150.0

    def test_hours_inverse(self):
        assert hours(seconds(hours=3.5)) == 3.5
