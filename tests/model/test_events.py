"""Unit tests for event primitives."""

from repro.model import OFF, ON, Event, hours, seconds


class TestEvent:
    def test_activation(self):
        assert Event(0.0, "s", ON).is_active
        assert not Event(0.0, "s", OFF).is_active

    def test_ordering_is_time_major(self):
        a = Event(1.0, "z", 0.0)
        b = Event(2.0, "a", 0.0)
        assert a < b

    def test_ordering_breaks_ties_by_device(self):
        a = Event(1.0, "a", 0.0)
        b = Event(1.0, "b", 0.0)
        assert a < b

    def test_shifted(self):
        event = Event(10.0, "s", 1.0)
        moved = event.shifted(5.0)
        assert moved.timestamp == 15.0
        assert moved.device_id == "s"


class TestTimeHelpers:
    def test_seconds(self):
        assert seconds(hours=1) == 3600.0
        assert seconds(minutes=2, secs=30) == 150.0

    def test_hours_inverse(self):
        assert hours(seconds(hours=3.5)) == 3.5
