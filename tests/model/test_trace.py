"""Unit and property tests for the array-backed Trace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Event, Trace


def make_trace(registry, times, devs, vals, **kwargs):
    return Trace(
        registry,
        np.asarray(times, dtype=float),
        np.asarray(devs, dtype=np.int32),
        np.asarray(vals, dtype=float),
        **kwargs,
    )


class TestConstruction:
    def test_sorts_events_by_time(self, registry):
        trace = make_trace(registry, [5.0, 1.0, 3.0], [0, 1, 2], [1.0, 1.0, 25.0])
        assert list(trace.timestamps) == [1.0, 3.0, 5.0]

    def test_misaligned_arrays_rejected(self, registry):
        with pytest.raises(ValueError):
            make_trace(registry, [1.0], [0, 1], [1.0, 1.0])

    def test_out_of_range_device_rejected(self, registry):
        with pytest.raises(ValueError):
            make_trace(registry, [1.0], [99], [1.0])

    def test_end_defaults_to_last_event(self, registry):
        trace = make_trace(registry, [1.0, 9.0], [0, 0], [1.0, 1.0])
        assert trace.end == 9.0

    def test_end_before_start_rejected(self, registry):
        with pytest.raises(ValueError):
            Trace.empty(registry, start=10.0, end=5.0)

    def test_event_outside_interval_rejected(self, registry):
        with pytest.raises(ValueError):
            make_trace(registry, [100.0], [0], [1.0], start=0.0, end=50.0)

    def test_from_events_roundtrip(self, registry):
        events = [Event(2.0, "motion_kitchen", 1.0), Event(1.0, "temp_kitchen", 20.0)]
        trace = Trace.from_events(registry, events)
        assert [e.device_id for e in trace] == ["temp_kitchen", "motion_kitchen"]

    def test_concatenate(self, registry):
        a = make_trace(registry, [1.0], [0], [1.0], start=0.0, end=10.0)
        b = make_trace(registry, [15.0], [1], [1.0], start=10.0, end=20.0)
        joined = Trace.concatenate([a, b])
        assert len(joined) == 2
        assert joined.start == 0.0 and joined.end == 20.0

    def test_concatenate_requires_shared_registry(self, registry):
        from repro.model import DeviceRegistry, SensorType, binary_sensor

        other = DeviceRegistry([binary_sensor("x", SensorType.MOTION)])
        a = Trace.empty(registry)
        b = Trace.empty(other)
        with pytest.raises(ValueError):
            Trace.concatenate([a, b])


class TestSlicing:
    def test_slice_half_open(self, registry):
        trace = make_trace(registry, [0.0, 5.0, 10.0], [0, 0, 0], [1, 1, 1])
        part = trace.slice(0.0, 10.0)
        assert len(part) == 2  # event at exactly t1 excluded

    def test_slice_rebase(self, registry):
        trace = make_trace(registry, [100.0, 150.0], [0, 0], [1, 1], end=200.0)
        part = trace.slice(100.0, 200.0, rebase=True)
        assert part.start == 0.0
        assert part.timestamps[0] == 0.0

    def test_shifted(self, registry):
        trace = make_trace(registry, [1.0], [0], [1.0], end=10.0)
        moved = trace.shifted(5.0)
        assert moved.timestamps[0] == 6.0
        assert moved.start == 5.0 and moved.end == 15.0

    def test_without_device_keeps_interval(self, registry):
        trace = make_trace(registry, [1.0, 2.0], [0, 1], [1, 1], end=10.0)
        cut = trace.without_device("motion_kitchen")
        assert len(cut) == 1
        assert cut.end == 10.0
        assert cut.registry is trace.registry

    def test_events_for(self, registry):
        trace = make_trace(registry, [1.0, 2.0, 3.0], [0, 2, 0], [1.0, 22.0, 1.0])
        times, values = trace.events_for("temp_kitchen")
        assert list(times) == [2.0]
        assert list(values) == [22.0]

    def test_with_extra_events_merges_sorted(self, registry):
        trace = make_trace(registry, [5.0], [0], [1.0], end=10.0)
        merged = trace.with_extra_events(
            np.array([1.0]), np.array([1], dtype=np.int32), np.array([1.0])
        )
        assert list(merged.timestamps) == [1.0, 5.0]


class TestStatistics:
    def test_event_counts(self, registry):
        trace = make_trace(registry, [1, 2, 3], [0, 0, 2], [1, 1, 20.0])
        counts = trace.event_counts()
        assert counts[0] == 2 and counts[2] == 1

    def test_active_devices(self, registry):
        trace = make_trace(registry, [1.0], [2], [20.0])
        assert [d.device_id for d in trace.active_devices()] == ["temp_kitchen"]


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    )
)
def test_slice_partition_property(times):
    """Slicing at any midpoint partitions the events exactly."""
    from repro.model import DeviceRegistry, SensorType, binary_sensor

    registry = DeviceRegistry([binary_sensor("s", SensorType.MOTION)])
    times = sorted(times)
    trace = Trace(
        registry,
        np.array(times),
        np.zeros(len(times), dtype=np.int32),
        np.ones(len(times)),
        start=0.0,
        end=times[-1] + 1.0,
    )
    mid = times[len(times) // 2]
    left = trace.slice(trace.start, mid)
    right = trace.slice(mid, trace.end + 1.0)
    assert len(left) + len(right) == len(trace)
