"""Per-backend scenario baselines: the matrix as a comparison harness.

``run_matrix(backends=[...])`` runs every cell once per backend over the
*same* seeded injections; the report (schema ``dice-scenario-report/2``)
groups the rows by backend and aggregates them into a ``baselines`` table
— the artifact the README's quickstart (``repro scenarios --backend dice
--backend markov``) produces.  Byte-determinism across runs is part of
the acceptance contract.
"""

import json

import pytest

from repro.scenarios import (
    ScenarioCell,
    ScenarioSettings,
    build_report,
    render_baselines,
    run_matrix,
    validate_report,
    write_report,
)

FAST = ScenarioSettings(trials=1)
BACKENDS = ("dice", "markov")

CELLS = [
    ScenarioCell("drift", "seasonal_shift", "synthetic", refresh=False),
    ScenarioCell("fault", "stuck_at", "synthetic", refresh=False),
]


@pytest.fixture(scope="module")
def doc():
    results = run_matrix(CELLS, seed=7, settings=FAST, backends=BACKENDS)
    return build_report(results, seed=7, settings=FAST)


class TestMatrixRows:
    def test_rows_group_by_backend_over_identical_cells(self, doc):
        rows = doc["cells"]
        assert [row["backend"] for row in rows] == (
            ["dice"] * len(CELLS) + ["markov"] * len(CELLS)
        )
        # Same injections for every backend: victims and onsets agree
        # between a cell's dice row and its markov row.
        by_backend = {
            name: [r for r in rows if r["backend"] == name]
            for name in BACKENDS
        }
        for dice_row, markov_row in zip(*by_backend.values()):
            assert dice_row["id"] == markov_row["id"]
            assert dice_row["victims"] == markov_row["victims"]
            assert dice_row["onset_hours"] == markov_row["onset_hours"]

    def test_report_validates_and_carries_baselines(self, doc):
        assert validate_report(doc) is doc
        assert [entry["backend"] for entry in doc["baselines"]] == list(
            BACKENDS
        )
        for entry in doc["baselines"]:
            assert entry["cells"] == len(CELLS)
            for section in ("detection", "identification"):
                assert 0.0 <= (entry[section]["precision"] or 0.0) <= 1.0
                assert 0.0 <= (entry[section]["recall"] or 0.0) <= 1.0

    def test_render_baselines_names_every_backend(self, doc):
        table = render_baselines(doc)
        for name in BACKENDS:
            assert name in table

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_matrix(CELLS, seed=7, settings=FAST, backends=())


class TestDeterminism:
    def test_same_seed_byte_identical_report(self, doc, tmp_path):
        again = build_report(
            run_matrix(CELLS, seed=7, settings=FAST, backends=BACKENDS),
            seed=7,
            settings=FAST,
        )
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_report(doc, str(first))
        write_report(again, str(second))
        assert first.read_bytes() == second.read_bytes()


class TestSchemaGuards:
    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d["cells"][0].update(backend=""), "backend"),
            (lambda d: d["baselines"].pop(), "baselines"),
            (
                lambda d: d["baselines"].__setitem__(
                    0, dict(d["baselines"][0], backend="markov")
                ),
                "baselines",
            ),
        ],
    )
    def test_mutated_report_rejected(self, doc, mutate, message):
        mutated = json.loads(json.dumps(doc))
        mutate(mutated)
        with pytest.raises(ValueError, match=message):
            validate_report(mutated)
