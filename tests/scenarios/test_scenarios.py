"""Tests for the scenario-matrix harness.

The expensive end-to-end properties run on the cheap synthetic drift
cells only (a 9 h cyclic home); the full default matrix is exercised by
the CI scenario-smoke job and the bench harness, not here.
"""

import json

import pytest

from repro.scenarios import (
    SCENARIO_SCHEMA,
    ScenarioCell,
    ScenarioSettings,
    build_report,
    default_matrix,
    refresh_pairs,
    render_table,
    run_matrix,
    select_cells,
    validate_report,
    write_report,
)

FAST = ScenarioSettings(trials=1)

DRIFT_PAIR = [
    ScenarioCell("drift", "seasonal_shift", "synthetic", refresh=False),
    ScenarioCell("drift", "seasonal_shift", "synthetic", refresh=True),
]


@pytest.fixture(scope="module")
def pair_doc():
    """One seeded run of the seasonal-shift refresh A/B, shared readonly."""
    results = run_matrix(DRIFT_PAIR, seed=7, settings=FAST)
    return build_report(results, seed=7, settings=FAST)


class TestCells:
    def test_default_matrix_coverage(self):
        cells = default_matrix()
        ids = [c.cell_id for c in cells]
        assert len(ids) == len(set(ids))
        variants = {(c.kind, c.variant) for c in cells}
        # All five Ni et al. fault classes, plus the actuator rendering.
        for fault in ("fail_stop", "outlier", "stuck_at", "high_noise", "spike"):
            assert ("fault", fault) in variants
        assert ("fault", "actuator") in variants
        # The Ch. VI attacks.
        for attack in ("temperature", "light", "coordinated"):
            assert ("attack", attack) in variants
        # Both drift renderings, each as a refresh A/B pair.
        drift = [c for c in cells if c.kind == "drift"]
        assert {c.variant for c in drift} == {
            "seasonal_shift",
            "device_replacement",
        }
        for variant in ("seasonal_shift", "device_replacement"):
            stances = {c.refresh for c in drift if c.variant == variant}
            assert stances == {False, True}
        # Multi-fault coverage.
        assert any(c.multi for c in cells)

    def test_refresh_pair_shares_injection(self):
        plain, refresh = DRIFT_PAIR
        assert plain.injection_id == refresh.injection_id
        assert plain.cell_id != refresh.cell_id

    def test_select_cells_substring(self):
        cells = default_matrix()
        picked = select_cells(cells, ["stuck_at"])
        assert picked
        assert all("stuck_at" in c.cell_id for c in picked)
        assert select_cells(cells, None) == list(cells)

    def test_select_cells_unmatched_filter_raises(self):
        with pytest.raises(ValueError, match="no cell"):
            select_cells(default_matrix(), ["no_such_cell"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScenarioCell("mystery", "x", "houseA")


class TestDeterminism:
    def test_same_seed_byte_identical_report(self, pair_doc, tmp_path):
        again = build_report(
            run_matrix(DRIFT_PAIR, seed=7, settings=FAST),
            seed=7,
            settings=FAST,
        )
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_report(pair_doc, str(first))
        write_report(again, str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_changes_injection(self, pair_doc):
        other = run_matrix(DRIFT_PAIR[:1], seed=8, settings=FAST)
        base = next(
            r for r in pair_doc["cells"] if not r["refresh_enabled"]
        )
        assert (
            other[0]["victims"] != base["victims"]
            or other[0]["onset_hours"] != base["onset_hours"]
        )


class TestReportSchema:
    def test_real_report_validates(self, pair_doc):
        assert validate_report(pair_doc) is pair_doc
        assert pair_doc["schema"] == SCENARIO_SCHEMA

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(schema="bogus/9"), "schema"),
            (lambda d: d.update(seed="seven"), "seed"),
            (lambda d: d.update(cells=[]), "non-empty"),
            (
                lambda d: d["cells"][0]["detection"].update(recall=1.5),
                "rate",
            ),
            (
                lambda d: d["cells"][0]["detection"].update(tp=5),
                "trials",
            ),
            (
                lambda d: d["cells"][0].update(refresh=None),
                "refresh",
            ),
            (
                lambda d: d["cells"].append(dict(d["cells"][0])),
                "duplicate",
            ),
        ],
    )
    def test_mutated_report_rejected(self, pair_doc, mutate, message):
        doc = json.loads(json.dumps(pair_doc))
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_report(doc)

    def test_render_table_lists_every_cell(self, pair_doc):
        table = render_table(pair_doc)
        for row in pair_doc["cells"]:
            assert row["id"] in table


class TestGracefulDegradation:
    def test_refresh_lowers_sustained_alert_rate(self, pair_doc):
        # The ISSUE acceptance criterion: with refresh enabled, the
        # sustained false-alert rate after a drift settles must be
        # measurably lower than the refresh-disabled twin's.
        pairs = refresh_pairs(pair_doc)
        assert [p["variant"] for p in pairs] == ["seasonal_shift"]
        pair = pairs[0]
        assert pair["plain"] is not None and pair["refresh"] is not None
        assert pair["plain"] > 1.0  # drift keeps the plain detector alerting
        assert pair["refresh"] < pair["plain"] / 4.0
        # And the refresh actually happened, per the recorded stats.
        refreshed = next(
            r for r in pair_doc["cells"] if r["refresh_enabled"]
        )
        assert refreshed["refresh"]["applied"] >= 1

    def test_drift_cells_carry_refresh_stats_plain_cells_dont(self, pair_doc):
        for row in pair_doc["cells"]:
            assert isinstance(row["refresh"], dict)
        fault_row = run_matrix(
            [ScenarioCell("fault", "stuck_at", "houseA")],
            seed=7,
            settings=FAST,
        )[0]
        assert fault_row["refresh"] is None
        assert fault_row["sustained_alerts_per_hour"] is None
