"""Network chaos: kill-and-recover through a live loopback ingest service.

The heavyweight 20-trial acceptance run lives behind ``repro chaos --mode
service``; these tests keep a small seeded slice of it in tier 1 so the
contract — byte-identical per-home alerts, exact at-least-once ingest
accounting, at-least-once outbox delivery — is pinned on every run.
"""

import os

import pytest

from repro.faults import run_chaos_service, run_service_trial
from repro.faults.crash import build_chaos_fleet, fleet_oracle


@pytest.fixture(scope="module")
def fleet():
    deployments, merged = build_chaos_fleet(7, num_homes=2)
    expected, _ = fleet_oracle(deployments, merged)
    return deployments, expected


class TestServiceTrial:
    def test_kill_and_recover_is_exact(self, fleet, tmp_path):
        deployments, expected = fleet
        total = sum(len(dep.events) for dep in deployments)
        result = run_service_trial(
            deployments,
            expected,
            os.fspath(tmp_path),
            kill_at=total // 2,
            faults=True,
        )
        assert result.ok, result
        assert result.mode == "service"
        assert not result.checkpointed

    def test_checkpoint_torn_tail_and_reshard(self, fleet, tmp_path):
        deployments, expected = fleet
        total = sum(len(dep.events) for dep in deployments)
        result = run_service_trial(
            deployments,
            expected,
            os.fspath(tmp_path),
            kill_at=(2 * total) // 3,
            checkpoint_at=total // 3,
            torn=True,
            shards_before=1,
            shards_after=4,
        )
        assert result.ok, result
        assert result.checkpointed
        assert result.torn

    def test_faultless_baseline(self, fleet, tmp_path):
        deployments, expected = fleet
        total = sum(len(dep.events) for dep in deployments)
        result = run_service_trial(
            deployments,
            expected,
            os.fspath(tmp_path),
            kill_at=total // 2,
            faults=False,
        )
        assert result.ok, result


class TestChaosBatch:
    def test_randomized_batch_is_green(self, tmp_path):
        report = run_chaos_service(
            os.fspath(tmp_path),
            fleets=1,
            kills_per_fleet=3,
            num_homes=2,
            seed=5,
        )
        summary = report.summary()
        assert summary["trials"] == 3
        assert report.ok, summary
        assert summary["delivered"] > 0
