"""Wire-protocol framing: roundtrips plus the seeded decoder fuzz suite."""

import json

import numpy as np
import pytest

from repro.durability.journal import _HEADER, frame_payload
from repro.durability.runtime import encode_event_frame
from repro.model import Event
from repro.service import protocol
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_SIZE,
    FrameDecoder,
    ProtocolError,
    encode_message,
)


def _messages(count: int) -> list:
    out = []
    for i in range(count):
        out.append(protocol.hello(f"home-{i:04d}"))
        out.append(protocol.welcome(i))
        out.append(protocol.resume(i))
        out.append(protocol.ack(i * 3))
        out.append(protocol.end(float(i)))
    return out


class TestRoundtrip:
    def test_control_messages_roundtrip(self):
        decoder = FrameDecoder()
        sent = _messages(4)
        blob = b"".join(encode_message(m) for m in sent)
        assert decoder.feed(blob) == sent
        assert decoder.buffered == 0
        assert not decoder.dead

    def test_event_frame_is_journal_record_bytes(self):
        """The wire event frame IS the journal record — byte-identical."""
        from repro.durability.journal import encode_record

        event = Event(1234.5, "motion_kitchen", 1.0)
        frame = encode_event_frame(event)
        record = {"d": "motion_kitchen", "t": 1234.5, "type": "event", "v": 1.0}
        assert frame == encode_record(record)
        decoder = FrameDecoder()
        assert decoder.feed(frame) == [record]

    def test_partial_frame_held_until_complete(self):
        decoder = FrameDecoder()
        frame = encode_message(protocol.sync())
        assert decoder.feed(frame[:3]) == []
        assert decoder.buffered == 3
        assert decoder.feed(frame[3:]) == [protocol.sync()]
        assert decoder.buffered == 0

    def test_oversized_length_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        header = _HEADER.pack(1 << 20, 0)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(header)
        assert decoder.dead
        assert decoder.buffered == 0

    def test_crc_mismatch_rejected(self):
        decoder = FrameDecoder()
        frame = bytearray(encode_message(protocol.sync()))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            decoder.feed(bytes(frame))
        assert decoder.dead

    def test_non_object_payload_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="typed object"):
            decoder.feed(frame_payload(b"[1,2,3]"))

    def test_untyped_object_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="typed object"):
            decoder.feed(frame_payload(json.dumps({"a": 1}).encode()))

    def test_poisoned_decoder_stays_dead(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(frame_payload(b"not json"))
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(encode_message(protocol.sync()))

    def test_messages_before_poison_are_preserved(self):
        decoder = FrameDecoder()
        good = encode_message(protocol.ack(7))
        bad = bytearray(encode_message(protocol.sync()))
        bad[-1] ^= 0xFF
        with pytest.raises(ProtocolError) as excinfo:
            decoder.feed(good + bytes(bad))
        assert excinfo.value.messages == [protocol.ack(7)]

    def test_max_frame_bytes_validation(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_frame_bytes=0)
        with pytest.raises(ValueError):
            FrameDecoder(max_frame_bytes=(1 << 20) + 1)


class TestFuzz:
    """Satellite: seeded randomized decoder fuzzing.

    Whatever the split points, garbage injections or truncations, the
    decoder must (a) never raise anything but ProtocolError, (b) preserve
    every intact frame up to the first corruption, and (c) never carry a
    poisoned stream forward.
    """

    def _drive(self, decoder, blob, rng):
        """Feed *blob* in random-sized chunks; return (messages, error)."""
        out = []
        offset = 0
        while offset < len(blob):
            step = 1 + int(rng.integers(64))
            chunk = bytes(blob[offset : offset + step])
            offset += step
            try:
                out.extend(decoder.feed(chunk))
            except ProtocolError as exc:
                out.extend(getattr(exc, "messages", []))
                return out, exc
        return out, None

    @pytest.mark.parametrize("seed", range(8))
    def test_random_splits_preserve_all_frames(self, seed):
        rng = np.random.default_rng(seed)
        sent = _messages(10)
        blob = b"".join(encode_message(m) for m in sent)
        got, err = self._drive(FrameDecoder(), blob, rng)
        assert err is None
        assert got == sent

    @pytest.mark.parametrize("seed", range(8))
    def test_garbage_injection_never_escapes_protocol_error(self, seed):
        rng = np.random.default_rng(100 + seed)
        sent = _messages(6)
        frames = [encode_message(m) for m in sent]
        cut = int(rng.integers(len(frames) + 1))
        garbage = rng.integers(0, 256, size=int(rng.integers(1, 64)),
                               dtype=np.uint8).tobytes()
        blob = b"".join(frames[:cut]) + garbage + b"".join(frames[cut:])
        decoder = FrameDecoder()
        got, err = self._drive(decoder, blob, rng)
        # Every frame before the corruption point must have survived.
        prefix = sent[:cut]
        assert got[: len(prefix)] == prefix
        if err is not None:
            assert isinstance(err, ProtocolError)
            assert decoder.dead

    @pytest.mark.parametrize("seed", range(8))
    def test_truncation_holds_partial_frame_without_error(self, seed):
        rng = np.random.default_rng(200 + seed)
        sent = _messages(6)
        blob = b"".join(encode_message(m) for m in sent)
        cut = int(rng.integers(1, len(blob)))
        decoder = FrameDecoder()
        got, err = self._drive(decoder, blob[:cut], rng)
        assert err is None  # a truncated tail is pending, not malformed
        assert got == sent[: len(got)]
        assert decoder.buffered <= HEADER_SIZE + DEFAULT_MAX_FRAME_BYTES

    @pytest.mark.parametrize("seed", range(4))
    def test_bitflip_anywhere_is_contained(self, seed):
        rng = np.random.default_rng(300 + seed)
        sent = _messages(4)
        blob = bytearray(b"".join(encode_message(m) for m in sent))
        blob[int(rng.integers(len(blob)))] ^= 1 << int(rng.integers(8))
        got, err = self._drive(FrameDecoder(), bytes(blob), rng)
        # Either the flip landed somewhere harmless (decoded fine) or it
        # raised ProtocolError; any decoded prefix must match the original.
        assert got == sent[: len(got)] or err is not None
        for message in got:
            assert message in sent
