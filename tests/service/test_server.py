"""IngestServer behaviour: admission control, HTTP surface, drain/resume.

Every test runs a real loopback server on a :class:`ServiceThread` over a
small seeded chaos home — the same stack ``repro serve`` deploys, minus
the process boundary.
"""

import http.client
import json
import os
import socket

import pytest

from repro import telemetry
from repro.durability import DurableFleetGateway
from repro.durability.runtime import encode_event_frame
from repro.faults.crash import (
    LATENESS_SECONDS,
    POLICY,
    build_chaos_deployment,
    canonical_alerts,
)
from repro.fleet import FleetGateway
from repro.service import (
    IngestServer,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    protocol,
)
from repro.service.protocol import FrameDecoder, encode_message
from repro.service.server import (
    DISCONNECTS_TOTAL,
    QUEUE_DEPTH_GAUGE,
    SHED_TOTAL,
)
from repro.streaming import HardenedOnlineDice
from repro.streaming.guard import OVERLOAD
from repro.telemetry.prometheus import validate_prometheus_text


@pytest.fixture(scope="module")
def deployment():
    return build_chaos_deployment(11, home_id="home-0000")


def _durable(deployment, journal_root, *, metrics=None):
    gateway = FleetGateway(
        1, metrics=metrics if metrics is not None else telemetry.MetricsRegistry()
    )
    gateway.add_runtime(
        deployment.home_id,
        HardenedOnlineDice(
            deployment.fit_detector(metrics=telemetry.NULL_REGISTRY),
            start=deployment.split,
            lateness_seconds=LATENESS_SECONDS,
            policy=POLICY,
        ),
    )
    return DurableFleetGateway(gateway, journal_root)


def _counter(snapshot: dict, name: str) -> float:
    entry = snapshot["metrics"].get(name)
    if entry is None:
        return 0.0
    return float(sum(row["value"] for row in entry["series"]))


def _http_get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def _blast(port: int, home_id: str, events) -> None:
    """Fire *events* at the server as fast as the socket will take them —
    no acks read, no retries — then ride out the disconnect."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    try:
        sock.sendall(encode_message(protocol.hello(home_id)))
        decoder = FrameDecoder()
        while True:
            messages = decoder.feed(sock.recv(4096))
            if messages:
                assert messages[0]["type"] == "welcome"
                break
        sock.sendall(b"".join(encode_event_frame(e) for e in events))
        while sock.recv(4096):
            pass  # drain until the server cuts us off
    except (ConnectionError, OSError):
        pass  # the shed disconnect, arriving mid-send
    finally:
        sock.close()


class TestOverload:
    def test_queue_full_sheds_bounded_and_recoverable(self, deployment, tmp_path):
        """A saturated queue sheds (structured OVERLOAD drops + counter +
        disconnect) with bounded depth, and a patient retrying client still
        lands the complete stream — overload degrades throughput, never
        correctness."""
        events = deployment.events[:200]
        assert len(events) == 200
        durable = _durable(deployment, os.fspath(tmp_path / "journals"))
        config = ServiceConfig(
            queue_capacity=8,
            dispatch_delay_s=0.002,  # makes overload machine-independent
            ack_every=16,
        )
        server = IngestServer(durable, config)
        handle = ServiceThread(server).start()
        try:
            _blast(handle.port, deployment.home_id, events)

            snapshot = handle.call(durable.metrics_snapshot)
            shed = _counter(snapshot, SHED_TOTAL)
            assert shed >= 1.0
            drops = handle.call(
                lambda: durable.runtime_of(deployment.home_id).drops.count(
                    OVERLOAD
                )
            )
            assert drops == shed  # every shed is a structured drop record
            assert handle.call(lambda: server.max_queue_depth) <= 8
            assert (
                _counter(snapshot, DISCONNECTS_TOTAL) >= 1.0
            )  # the overloading client was cut, not buffered for

            # Shed events were never journaled, so `applied` is exactly the
            # admitted prefix and a patient retry completes the stream.
            applied = handle.call(
                lambda: durable.ingest_seqs.get(deployment.home_id, 0)
            )
            assert 0 < applied < len(events)
            patient = ServiceClient(
                "127.0.0.1",
                handle.port,
                max_attempts=200,
                base_delay=0.002,
                max_delay=0.05,
                jitter_seed=1,
            )
            report = patient.send_stream(
                deployment.home_id, events, finish=False
            )
            assert report.applied == len(events)
            assert handle.call(
                lambda: durable.ingest_seqs.get(deployment.home_id, 0)
            ) == len(events)
        finally:
            handle.kill()

    def test_queue_depth_gauge_exported(self, deployment, tmp_path):
        durable = _durable(deployment, os.fspath(tmp_path / "journals"))
        handle = ServiceThread(IngestServer(durable, ServiceConfig())).start()
        try:
            snapshot = handle.call(durable.metrics_snapshot)
            assert QUEUE_DEPTH_GAUGE in snapshot["metrics"]
        finally:
            handle.kill()


class TestHttp:
    def test_metrics_health_ready(self, deployment, tmp_path):
        durable = _durable(deployment, os.fspath(tmp_path / "journals"))
        server = IngestServer(durable, ServiceConfig())
        handle = ServiceThread(server).start()
        try:
            client = ServiceClient("127.0.0.1", handle.port, jitter_seed=0)
            client.send_stream(
                deployment.home_id, deployment.events[:50], finish=False
            )

            status, body = _http_get(handle.http_port, "/metrics")
            assert status == 200
            assert validate_prometheus_text(body) > 0
            assert QUEUE_DEPTH_GAUGE in body

            status, body = _http_get(handle.http_port, "/health")
            assert status == 200
            health = json.loads(body)
            assert health["service"]["ready"] is True
            assert health["service"]["draining"] is False
            assert health["service"]["queue_capacity"] == 4096

            status, body = _http_get(handle.http_port, "/ready")
            assert (status, body) == (200, "ready\n")

            status, _ = _http_get(handle.http_port, "/nope")
            assert status == 404
        finally:
            handle.kill()

    def test_ready_flips_503_then_refuses_after_drain(self, deployment, tmp_path):
        durable = _durable(deployment, os.fspath(tmp_path / "journals"))
        server = IngestServer(durable, ServiceConfig())
        handle = ServiceThread(server).start()
        http_port = handle.http_port
        assert _http_get(http_port, "/ready")[0] == 200
        # The readiness probe answers 503 the moment the server stops
        # being ready — the drain window a load balancer must see.
        handle.call(lambda: setattr(server, "ready", False))
        status, body = _http_get(http_port, "/ready")
        assert (status, body) == (503, "draining\n")
        handle.drain()
        # After drain the HTTP listener is gone: connection refused, never
        # a stale "ready".
        with pytest.raises(OSError):
            _http_get(http_port, "/ready")


class TestDrainResume:
    def test_drain_checkpoints_and_resume_matches_oracle(
        self, deployment, tmp_path
    ):
        """Stop mid-stream via graceful drain, recover from the drain
        checkpoint, finish on a new server: byte-identical alerts vs the
        uninterrupted in-process run."""
        home = deployment.home_id
        events = deployment.events
        cut = len(events) // 2

        oracle = _durable(
            deployment,
            os.fspath(tmp_path / "oracle"),
            metrics=telemetry.NULL_REGISTRY,
        )
        oracle.dispatch((home, event) for event in events)
        oracle.finish_home(home, deployment.end)
        expected = canonical_alerts(oracle.alerts_of(home))

        journal_root = os.fspath(tmp_path / "journals")
        ckpt = os.fspath(tmp_path / "ckpt")
        durable = _durable(deployment, journal_root)
        server = IngestServer(durable, ServiceConfig(), checkpoint_dir=ckpt)
        handle = ServiceThread(server).start()
        client = ServiceClient("127.0.0.1", handle.port, jitter_seed=0)
        report = client.send_stream(home, events[:cut], finish=False)
        assert report.applied == cut
        prefix = handle.call(lambda: list(durable.alerts_of(home)))
        handle.drain()  # graceful: flush + checkpoint into `ckpt`

        recovered, replayed = DurableFleetGateway.recover(
            {home: deployment.fit_detector(metrics=telemetry.NULL_REGISTRY)},
            journal_root,
            checkpoint_dir=ckpt,
            lateness_seconds=LATENESS_SECONDS,
            policy=POLICY,
        )
        assert replayed == []  # drain checkpointed, so the tail is empty
        assert recovered.ingest_seqs[home] == cut
        handle2 = ServiceThread(IngestServer(recovered, ServiceConfig())).start()
        try:
            client2 = ServiceClient("127.0.0.1", handle2.port, jitter_seed=1)
            report = client2.send_stream(home, events, end=deployment.end)
            assert report.applied == len(events)
            assert report.resent == 0  # resume skipped the applied prefix
        finally:
            handle2.drain()
        got = canonical_alerts(prefix + recovered.alerts_of(home))
        assert got == expected
