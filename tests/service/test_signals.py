"""GracefulShutdown: signals request a drain; the loop stops between items."""

import os
import signal

from repro.service import GracefulShutdown, drain_iter


def _fire(signum=signal.SIGTERM):
    os.kill(os.getpid(), signum)


class TestGracefulShutdown:
    def test_sigterm_sets_requested(self):
        with GracefulShutdown() as shutdown:
            assert not shutdown.requested
            _fire(signal.SIGTERM)
            assert shutdown.requested
            assert shutdown.signal_name == "SIGTERM"

    def test_sigint_sets_requested(self):
        with GracefulShutdown() as shutdown:
            _fire(signal.SIGINT)
            assert shutdown.requested
            assert shutdown.signal_name == "SIGINT"

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_drain_iter_stops_between_items(self):
        """The signal lands mid-stream; the item in flight completes and
        nothing after it is yielded — the checkpoint-consistent prefix."""
        with GracefulShutdown() as shutdown:
            seen = []
            for item in drain_iter(range(10), shutdown):
                seen.append(item)
                if item == 3:
                    _fire(signal.SIGTERM)
            assert seen == [0, 1, 2, 3]

    def test_drain_iter_without_shutdown_passes_through(self):
        assert list(drain_iter(range(4), None)) == [0, 1, 2, 3]

    def test_drain_iter_idle_stream_untouched(self):
        with GracefulShutdown() as shutdown:
            assert list(drain_iter(range(3), shutdown)) == [0, 1, 2]
