"""Unit tests for the automation rules."""

import pytest

from repro.smarthome import ActivityActuatorRule, ActivityInstance, ActivitySpec, DaylightBlindRule, EffectSwitchRule, NumericEffect, OccupancyLightRule, SimulationContext
from repro.smarthome.effects import EffectInterval

HOUR = 3600.0


def context(**overrides):
    defaults = dict(
        horizon=24 * HOUR,
        schedule=[],
        occupancy={},
        daylight=[(6 * HOUR, 19 * HOUR)],
        numeric_effects={},
    )
    defaults.update(overrides)
    return SimulationContext(**defaults)


class TestOccupancyLightRule:
    def test_on_off_events_with_delay(self):
        rule = OccupancyLightRule(
            "bulb", "kitchen", ["light_k"], night_only=False, delay_seconds=60.0
        )
        ctx = context(occupancy={"kitchen": [(1000.0, 2000.0)]})
        out = rule.evaluate(ctx)
        assert out.events == [(1060.0, 1.0), (2060.0, 0.0)]

    def test_feedback_effect_spans_occupancy(self):
        rule = OccupancyLightRule(
            "bulb", "kitchen", ["light_k"], night_only=False, delay_seconds=60.0
        )
        ctx = context(occupancy={"kitchen": [(1000.0, 2000.0)]})
        out = rule.evaluate(ctx)
        assert len(out.effects) == 1
        effect = out.effects[0]
        assert effect.device_id == "light_k"
        assert (effect.start, effect.end) == (1060.0, 2060.0)

    def test_night_only_intersects_with_night(self):
        rule = OccupancyLightRule("bulb", "kitchen", night_only=True)
        # Occupancy entirely during daylight -> bulb never turns on.
        ctx = context(occupancy={"kitchen": [(10 * HOUR, 12 * HOUR)]})
        assert rule.evaluate(ctx).events == []

    def test_empty_room_produces_nothing(self):
        rule = OccupancyLightRule("bulb", "kitchen", night_only=False)
        assert rule.evaluate(context()).events == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            OccupancyLightRule("bulb", "kitchen", delay_seconds=-1.0)


class TestEffectSwitchRule:
    def test_follows_positive_effects_only(self):
        rule = EffectSwitchRule("fan", "temp_k", delay_seconds=60.0)
        ctx = context(
            numeric_effects={
                "temp_k": [
                    EffectInterval("temp_k", 1000.0, 2000.0, 5.0),
                    EffectInterval("temp_k", 3000.0, 4000.0, -5.0),
                ]
            }
        )
        out = rule.evaluate(ctx)
        assert out.events == [(1060.0, 1.0), (2060.0, 0.0)]

    def test_feedback(self):
        rule = EffectSwitchRule(
            "hum", "h_bed", feedback=[NumericEffect("h_bed2", 3.0)]
        )
        ctx = context(
            numeric_effects={"h_bed": [EffectInterval("h_bed", 0.0, 600.0, 2.0)]}
        )
        out = rule.evaluate(ctx)
        assert out.effects[0].device_id == "h_bed2"


class TestDaylightBlindRule:
    def test_two_movements_per_day(self):
        rule = DaylightBlindRule("blind", delay_seconds=120.0)
        out = rule.evaluate(context())
        activations = [t for t, v in out.events if v > 0]
        assert activations == [6 * HOUR + 120.0, 19 * HOUR + 120.0]

    def test_movement_completion_reported(self):
        rule = DaylightBlindRule("blind", movement_seconds=90.0, delay_seconds=0.0)
        out = rule.evaluate(context())
        offs = [t for t, v in out.events if v == 0.0]
        assert offs == [6 * HOUR + 90.0, 19 * HOUR + 90.0]


class TestActivityActuatorRule:
    def test_matches_activity_instances(self):
        spec = ActivitySpec("listen_music", "living_room", (30, 40))
        inst = ActivityInstance(spec, 1000.0, 3000.0)
        rule = ActivityActuatorRule("speaker", "listen_music", delay_seconds=60.0)
        out = rule.evaluate(context(schedule=[inst]))
        assert out.events == [(1060.0, 1.0), (3060.0, 0.0)]

    def test_other_activities_ignored(self):
        spec = ActivitySpec("cook", "kitchen", (10, 20))
        inst = ActivityInstance(spec, 1000.0, 2000.0)
        rule = ActivityActuatorRule("speaker", "listen_music")
        assert rule.evaluate(context(schedule=[inst])).events == []
