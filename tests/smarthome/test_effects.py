"""Tests for signal synthesis (numeric builders, binary triggers)."""

import numpy as np
import pytest

from repro.smarthome import BinaryTrigger, NumericProfile, NumericSignalBuilder, binary_events


def profile(**kw):
    defaults = dict(
        base=20.0,
        quantum=1.0,
        noise_sigma=0.0,
        ramp_seconds=30.0,
        sample_interval=10.0,
        hold_reports=1,
        held_interval=0.0,
        snap_seconds=60.0,
    )
    defaults.update(kw)
    return NumericProfile(**defaults)


class TestBinaryTrigger:
    def test_continuous_period(self):
        trigger = BinaryTrigger("d", "continuous", period=20.0)
        times = binary_events(trigger, 0.0, 100.0, np.random.default_rng(0))
        assert list(times) == [0.0, 20.0, 40.0, 60.0, 80.0]

    def test_start_and_end(self):
        rng = np.random.default_rng(0)
        assert list(binary_events(BinaryTrigger("d", "start"), 5.0, 9.0, rng)) == [5.0]
        assert list(binary_events(BinaryTrigger("d", "end"), 5.0, 9.0, rng)) == [9.0]

    def test_random_is_subset_of_grid(self):
        trigger = BinaryTrigger("d", "random", period=10.0, probability=0.5)
        times = binary_events(trigger, 0.0, 200.0, np.random.default_rng(1))
        assert all(t % 10.0 == 0.0 for t in times)
        assert len(times) < 20

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            BinaryTrigger("d", "sometimes")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BinaryTrigger("d", "random", probability=1.5)


class TestLevels:
    def test_single_effect(self):
        builder = NumericSignalBuilder(profile())
        builder.add(120.0, 300.0, 5.0)
        assert builder.levels(600.0) == [(0.0, 20.0), (120.0, 25.0), (300.0, 20.0)]

    def test_overlapping_effects_sum(self):
        builder = NumericSignalBuilder(profile())
        builder.add(60.0, 240.0, 5.0)
        builder.add(120.0, 180.0, 3.0)
        levels = dict(builder.levels(600.0))
        assert levels[120.0] == 28.0
        assert levels[180.0] == 25.0

    def test_snap_rounds_to_grid(self):
        builder = NumericSignalBuilder(profile(snap_seconds=60.0))
        builder.add(95.0, 200.0, 5.0)
        assert builder.levels(600.0)[1][0] == 120.0

    def test_snap_keeps_minimum_duration(self):
        builder = NumericSignalBuilder(profile())
        builder.add(100.0, 110.0, 5.0)  # would collapse when snapped
        levels = builder.levels(600.0)
        assert len(levels) == 3  # up and back down

    def test_zero_delta_ignored(self):
        builder = NumericSignalBuilder(profile())
        builder.add(60.0, 120.0, 0.0)
        assert builder.levels(600.0) == [(0.0, 20.0)]


class TestRender:
    def test_quiet_sensor_emits_nothing(self):
        builder = NumericSignalBuilder(profile())
        times, values = builder.render(600.0, np.random.default_rng(0))
        assert len(times) == 0

    def test_ramp_then_silence(self):
        builder = NumericSignalBuilder(profile())
        builder.add(60.0, 600.0, 10.0)
        times, values = builder.render(600.0, np.random.default_rng(0))
        # Ramp samples + one settle confirmation, then silence on plateau.
        assert times[0] == 60.0
        assert times[-1] < 120.0
        assert values[-1] == 30.0

    def test_held_reporting_covers_plateau(self):
        builder = NumericSignalBuilder(profile(held_interval=45.0))
        builder.add(60.0, 600.0, 10.0)
        times, values = builder.render(600.0, np.random.default_rng(0))
        # Every window of the plateau must contain at least one reading.
        for window_start in range(120, 540, 60):
            in_window = (times >= window_start) & (times < window_start + 60)
            assert in_window.any()

    def test_values_are_quantised(self):
        builder = NumericSignalBuilder(profile(quantum=0.5, noise_sigma=0.05))
        builder.add(60.0, 600.0, 7.3)
        _, values = builder.render(600.0, np.random.default_rng(3))
        assert np.allclose(values * 2, np.round(values * 2))

    def test_monotone_quadratic_ramp(self):
        builder = NumericSignalBuilder(profile(ramp_seconds=30.0))
        builder.add(60.0, 600.0, 10.0)
        times, values = builder.render(600.0, np.random.default_rng(0))
        ramp = values[times < 90.0]
        assert list(ramp) == sorted(ramp)

    def test_negative_duration_rejected(self):
        builder = NumericSignalBuilder(profile())
        with pytest.raises(ValueError):
            builder.add(10.0, 5.0, 1.0)
