"""Tests for routine instantiation and occupancy derivation."""

import numpy as np
import pytest

from repro.smarthome import (
    ActivityCatalog,
    ActivitySpec,
    DailyRoutine,
    RoutineEntry,
    build_schedule,
    occupancy_intervals,
)

DAY = 24 * 3600.0


def catalog():
    return ActivityCatalog(
        [
            ActivitySpec("breakfast", "kitchen", (10, 14)),
            ActivitySpec("sleep", "bedroom", (600, 720), still=True),
            ActivitySpec("away", "hall", (600, 720), away=True),
        ]
    )


def routine(entries=None):
    return DailyRoutine(
        entries
        or [
            RoutineEntry("sleep", 23 * 60, 3),
            RoutineEntry("breakfast", 8 * 60, 3),
            RoutineEntry("away", 9 * 60, 3, skip_probability=0.5),
        ]
    )


class TestRoutineEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            RoutineEntry("x", -1)
        with pytest.raises(ValueError):
            RoutineEntry("x", 10, jitter_minutes=-1)
        with pytest.raises(ValueError):
            RoutineEntry("x", 10, skip_probability=1.0)

    def test_activity_names_deduplicated(self):
        r = DailyRoutine(
            [RoutineEntry("a", 10), RoutineEntry("b", 20), RoutineEntry("a", 30)]
        )
        assert r.activity_names == ["a", "b"]


class TestBuildSchedule:
    def test_instances_sorted_and_clipped(self):
        rng = np.random.default_rng(0)
        schedule = build_schedule(routine(), catalog(), 3 * DAY, rng)
        for earlier, later in zip(schedule, schedule[1:]):
            assert earlier.start <= later.start
            assert earlier.end <= later.start + 1e-9

    def test_minute_snapping(self):
        rng = np.random.default_rng(0)
        schedule = build_schedule(routine(), catalog(), 2 * DAY, rng)
        for inst in schedule:
            assert inst.start % 60.0 == 0.0
            assert inst.end % 60.0 == 0.0

    def test_presence_extends_to_next_instance(self):
        rng = np.random.default_rng(0)
        schedule = build_schedule(routine(), catalog(), 2 * DAY, rng)
        for earlier, later in zip(schedule, schedule[1:]):
            assert earlier.presence_end == later.start

    def test_fill_activity_reaches_successor(self):
        rng = np.random.default_rng(1)
        schedule = build_schedule(routine(), catalog(), 2 * DAY, rng)
        sleeps = [i for i in schedule if i.name == "sleep"]
        assert sleeps
        for sleep in sleeps[:-1]:
            following = [i for i in schedule if i.start >= sleep.end]
            assert following and following[0].start == sleep.end

    def test_skip_probability_takes_effect(self):
        rng = np.random.default_rng(2)
        schedule = build_schedule(routine(), catalog(), 30 * DAY, rng)
        aways = [i for i in schedule if i.name == "away"]
        assert 3 < len(aways) < 28

    def test_deterministic_given_seed(self):
        a = build_schedule(routine(), catalog(), 5 * DAY, np.random.default_rng(7))
        b = build_schedule(routine(), catalog(), 5 * DAY, np.random.default_rng(7))
        assert [(i.name, i.start, i.end) for i in a] == [
            (i.name, i.start, i.end) for i in b
        ]


class TestOccupancy:
    def test_away_contributes_nothing(self):
        rng = np.random.default_rng(0)
        schedule = build_schedule(routine(), catalog(), 2 * DAY, rng)
        occupancy = occupancy_intervals(schedule)
        assert "hall" not in occupancy

    def test_rooms_present(self):
        rng = np.random.default_rng(0)
        schedule = build_schedule(routine(), catalog(), 2 * DAY, rng)
        occupancy = occupancy_intervals(schedule)
        assert "kitchen" in occupancy and "bedroom" in occupancy

    def test_spans_merged_and_sorted(self):
        rng = np.random.default_rng(0)
        schedule = build_schedule(routine(), catalog(), 5 * DAY, rng)
        for spans in occupancy_intervals(schedule).values():
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 < s2
