"""Tests for the home simulator, floor plans, daylight and automations."""

import numpy as np
import pytest

from repro.smarthome import (
    DaylightModel,
    FloorPlan,
    HomeSimulator,
    postech_floorplan,
    single_floor_apartment,
)
from repro.datasets import build_spec


class TestFloorPlan:
    def test_rooms_and_doorways(self):
        plan = FloorPlan(["a", "b"], [("a", "b")])
        assert plan.are_adjacent("a", "b")
        assert plan.neighbours("a") == frozenset({"b"})
        assert "a" in plan and "c" not in plan

    def test_duplicate_rooms_rejected(self):
        with pytest.raises(ValueError):
            FloorPlan(["a", "a"])

    def test_self_doorway_rejected(self):
        plan = FloorPlan(["a", "b"])
        with pytest.raises(ValueError):
            plan.connect("a", "a")

    def test_unknown_room_rejected(self):
        plan = FloorPlan(["a"])
        with pytest.raises(KeyError):
            plan.connect("a", "ghost")

    def test_standard_plans(self):
        assert "kitchen" in postech_floorplan()
        assert "hall" in single_floor_apartment(["toilet"])


class TestDaylight:
    def test_one_span_per_day(self):
        model = DaylightModel(jitter_minutes=0.0)
        spans = model.spans(3 * 24 * 3600.0, np.random.default_rng(0))
        assert len(spans) == 3
        for start, end in spans:
            assert end - start == pytest.approx(13 * 3600.0, abs=60.0)

    def test_spans_clipped_to_horizon(self):
        model = DaylightModel()
        spans = model.spans(8 * 3600.0, np.random.default_rng(0))
        for start, end in spans:
            assert 0 <= start < end <= 8 * 3600.0

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            DaylightModel(sunrise_minute=1200, sunset_minute=600)


class TestSimulator:
    @pytest.fixture(scope="class")
    def trace(self):
        return HomeSimulator(build_spec("D_houseA")).simulate(48 * 3600.0, seed=3)

    def test_deterministic_given_seed(self):
        spec = build_spec("houseA")
        a = HomeSimulator(spec).simulate(24 * 3600.0, seed=9)
        b = HomeSimulator(spec).simulate(24 * 3600.0, seed=9)
        assert np.array_equal(a.timestamps, b.timestamps)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        spec = build_spec("houseA")
        a = HomeSimulator(spec).simulate(24 * 3600.0, seed=1)
        b = HomeSimulator(spec).simulate(24 * 3600.0, seed=2)
        assert len(a) != len(b) or not np.array_equal(a.timestamps, b.timestamps)

    def test_all_device_kinds_produce_events(self, trace):
        counts = trace.event_counts()
        registry = trace.registry
        assert counts[registry.index_of("motion_kitchen")] > 0
        assert counts[registry.index_of("t_kitchen")] > 0
        assert counts[registry.index_of("hue_kitchen")] > 0
        assert counts[registry.index_of("w_bed")] > 0

    def test_events_inside_horizon(self, trace):
        assert trace.timestamps.min() >= 0.0
        assert trace.timestamps.max() < 48 * 3600.0

    def test_motion_fires_only_when_occupied(self, trace):
        # Deep night (02:00-03:00): the resident sleeps (still) — the
        # kitchen motion sensor must stay quiet.
        night = trace.slice(2 * 3600.0, 3 * 3600.0)
        times, _ = night.events_for("motion_kitchen")
        assert len(times) == 0

    def test_bed_weight_active_at_night(self, trace):
        # Second night (the simulation starts at midnight of day 0, before
        # the first scheduled sleep instance exists).
        night = trace.slice(26 * 3600.0, 27 * 3600.0)
        _, values = night.events_for("w_bed")
        # Held reporting keeps the mat visible throughout the night.
        assert len(values) > 0
        assert values.max() >= 69.0

    def test_fan_follows_cooking(self, trace):
        fan_times, fan_values = trace.events_for("wemo_fan")
        activations = fan_times[fan_values > 0]
        assert len(activations) > 0
        # Each activation must coincide with elevated kitchen temperature
        # shortly after (the cooking effect that triggered it).
        temp_times, temp_values = trace.events_for("t_kitchen")
        for activation in activations[:5]:
            nearby = temp_values[
                (temp_times > activation - 900) & (temp_times < activation + 900)
            ]
            assert len(nearby) and nearby.max() > 22.0

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            HomeSimulator(build_spec("houseA")).simulate(0.0, seed=1)
