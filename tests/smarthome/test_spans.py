"""Unit and property tests for span arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smarthome.spans import (
    clip,
    complement,
    contains,
    intersect,
    normalise,
    shift,
    total_length,
    union,
)

span_lists = st.lists(
    st.tuples(
        st.floats(0, 1000, allow_nan=False), st.floats(0, 1000, allow_nan=False)
    ).map(lambda p: (min(p), max(p))),
    max_size=12,
)


class TestNormalise:
    def test_merges_overlaps(self):
        assert normalise([(0, 5), (3, 8)]) == [(0, 8)]

    def test_merges_touching(self):
        assert normalise([(0, 5), (5, 8)]) == [(0, 8)]

    def test_drops_empty(self):
        assert normalise([(3, 3), (1, 2)]) == [(1, 2)]

    def test_sorts(self):
        assert normalise([(5, 6), (1, 2)]) == [(1, 2), (5, 6)]


class TestIntersect:
    def test_basic(self):
        assert intersect([(0, 10)], [(5, 15)]) == [(5, 10)]

    def test_disjoint(self):
        assert intersect([(0, 1)], [(2, 3)]) == []

    def test_multiple(self):
        a = [(0, 4), (6, 10)]
        b = [(2, 8)]
        assert intersect(a, b) == [(2, 4), (6, 8)]


class TestComplement:
    def test_gaps(self):
        assert complement([(2, 4)], 0, 10) == [(0, 2), (4, 10)]

    def test_full_cover(self):
        assert complement([(0, 10)], 0, 10) == []

    def test_empty_input(self):
        assert complement([], 0, 5) == [(0, 5)]


class TestMisc:
    def test_union(self):
        assert union([(0, 2)], [(1, 5)]) == [(0, 5)]

    def test_total_length(self):
        assert total_length([(0, 2), (5, 6)]) == 3

    def test_contains(self):
        assert contains([(0, 2)], 1.0)
        assert not contains([(0, 2)], 2.0)  # half-open

    def test_shift(self):
        assert shift([(0, 1)], 10) == [(10, 11)]

    def test_clip(self):
        assert clip([(0, 10)], 2, 5) == [(2, 5)]
        assert clip([(0, 1)], 5, 6) == []


@settings(max_examples=60, deadline=None)
@given(spans=span_lists)
def test_normalise_is_idempotent(spans):
    once = normalise(spans)
    assert normalise(once) == once


@settings(max_examples=60, deadline=None)
@given(spans=span_lists)
def test_complement_partitions_interval(spans):
    lo, hi = 0.0, 1000.0
    norm = normalise(clip(spans, lo, hi))
    comp = complement(norm, lo, hi)
    assert total_length(norm) + total_length(comp) == pytest.approx(hi - lo)
    assert intersect(norm, comp) == []
