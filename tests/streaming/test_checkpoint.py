"""Checkpoint/restore determinism for the hardened gateway runtime.

The headline property: for seeded adversarial traces,
``restore(checkpoint(mid-stream)) + replay tail`` produces a byte-identical
alert sequence to an uninterrupted run — including with events pending in
the reorder buffer, an identification session open, and devices quarantined
at the moment of the crash.
"""

import json
import random

import numpy as np
import pytest

from repro.core import DiceDetector
from repro.faults import PipeFaultInjector, PipeFaultSpec, PipeFaultType
from repro.streaming import (
    CheckpointError,
    HardenedOnlineDice,
    SupervisorPolicy,
    load_checkpoint,
    restore_from_file,
    restore_runtime,
    save_checkpoint,
)
from tests.conftest import HOUR


@pytest.fixture
def detector(registry, cyclic_trace):
    return DiceDetector(registry).fit(cyclic_trace.slice(0.0, 3.0 * HOUR))


@pytest.fixture
def live_events(cyclic_trace):
    return list(cyclic_trace.slice(3.0 * HOUR, 4.0 * HOUR))


def _runtime(detector, start):
    return HardenedOnlineDice(
        detector,
        start=start,
        lateness_seconds=120.0,
        policy=SupervisorPolicy(silence_seconds=400.0, quarantine_seconds=800.0),
    )


def _canon(alerts):
    """Byte rendering of an alert sequence that is independent of the
    process hash seed (frozenset iteration order is not)."""
    return repr(
        [
            (a.kind, a.time, a.check, a.cases, tuple(sorted(a.devices)), a.converged)
            for a in alerts
        ]
    )


def _adversarial(events, seed):
    injector = PipeFaultInjector(
        np.random.default_rng(seed),
        [
            PipeFaultSpec(PipeFaultType.REORDER, max_delay_seconds=90.0),
            PipeFaultSpec(PipeFaultType.DUPLICATE, rate=0.1, max_delay_seconds=90.0),
            PipeFaultSpec(PipeFaultType.CORRUPT_VALUE, rate=0.02),
        ],
    )
    return injector.apply(events)


class TestRoundTripDeterminism:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_resume_equals_uninterrupted(self, detector, live_events, cyclic_trace, seed):
        events = _adversarial(live_events, seed)
        start = 3.0 * HOUR
        end = cyclic_trace.end

        uninterrupted = _runtime(detector, start)
        expected = uninterrupted.ingest_many(events)
        expected += uninterrupted.finish_stream(end)

        cut = len(events) // 2
        first = _runtime(detector, start)
        head = first.ingest_many(events[:cut])
        # Force a genuine serialize -> parse cycle, as a crash would.
        snapshot = json.loads(json.dumps(first.checkpoint()))
        resumed = restore_runtime(detector, snapshot)
        tail = resumed.ingest_many(events[cut:])
        tail += resumed.finish_stream(end)

        assert head + tail == expected
        assert _canon(head + tail) == _canon(expected)
        assert resumed.drops.summary() == uninterrupted.drops.summary()

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_resume_equals_uninterrupted_at_random_cuts(
        self, detector, live_events, cyclic_trace, seed
    ):
        # Same property as above, but the crash lands at a seeded-random
        # event index rather than the midpoint: the cut may fall inside a
        # window, inside the reorder buffer's lateness horizon, or right
        # before a duplicate — none of which may show in the alerts.
        events = _adversarial(live_events, seed)
        cut = random.Random(seed).randrange(1, len(events))
        start, end = 3.0 * HOUR, cyclic_trace.end

        uninterrupted = _runtime(detector, start)
        expected = uninterrupted.ingest_many(events)
        expected += uninterrupted.finish_stream(end)

        first = _runtime(detector, start)
        head = first.ingest_many(events[:cut])
        snapshot = json.loads(json.dumps(first.checkpoint()))
        resumed = restore_runtime(detector, snapshot)
        tail = resumed.ingest_many(events[cut:])
        tail += resumed.finish_stream(end)

        assert _canon(head + tail) == _canon(expected), f"cut at {cut}"
        assert resumed.drops.summary() == uninterrupted.drops.summary()

    def test_counter_totals_survive_restart(self, registry, cyclic_trace):
        # Monotone telemetry totals are part of the checkpoint (schema v2):
        # after a crash/restore cycle the counters must continue from where
        # they left off, not restart at the tail's contribution.  Each
        # scenario gets its own detector + registry so totals are isolated.
        from repro import telemetry
        from repro.streaming.runtime import ALERTS_TOTAL

        def fresh_runtime():
            det = DiceDetector(
                registry, metrics=telemetry.MetricsRegistry()
            ).fit(cyclic_trace.slice(0.0, 3.0 * HOUR))
            return _runtime(det, 3.0 * HOUR), det

        def alerts_total(runtime):
            families = runtime.metrics.snapshot()["metrics"]
            entry = families.get(ALERTS_TOTAL)
            return sum(row["value"] for row in entry["series"]) if entry else 0.0

        events = _adversarial(list(cyclic_trace.slice(3.0 * HOUR, 4.0 * HOUR)), 7)
        full, _ = fresh_runtime()
        expected = full.ingest_many(events)
        expected += full.finish_stream(cyclic_trace.end)
        assert alerts_total(full) == float(len(full.alerts))

        cut = random.Random(7).randrange(1, len(events))
        first, det = fresh_runtime()
        first.ingest_many(events[:cut])
        snapshot = json.loads(json.dumps(first.checkpoint()))
        resumed = restore_runtime(det, snapshot)
        resumed.ingest_many(events[cut:])
        resumed.finish_stream(cyclic_trace.end)
        assert alerts_total(resumed) == alerts_total(full)

    def test_checkpoint_preserves_open_session(self, small_house):
        """Cut the stream while an identification session is open and check
        the session survives serialization.  The tiny cyclic fixture resolves
        identifications within one window, so this uses the houseA deployment,
        where a fridge fail-stop keeps the probable set ambiguous for a while.
        """
        trace = small_house.trace
        detector = DiceDetector(trace.registry).fit(trace.slice(0, 72 * HOUR))
        segment = trace.slice(102 * HOUR, 110 * HOUR)
        faulty = [e for e in segment if e.device_id != "fridge"]

        def runtime():
            # Supervision horizons far beyond the segment: the fail-stopped
            # fridge must stay visible so the session stays open.
            return HardenedOnlineDice(
                detector,
                start=segment.start,
                lateness_seconds=120.0,
                policy=SupervisorPolicy(
                    silence_seconds=24 * HOUR, quarantine_seconds=48 * HOUR
                ),
            )

        uninterrupted = runtime()
        expected = uninterrupted.ingest_many(faulty)
        expected += uninterrupted.finish_stream(segment.end)
        assert any(a.kind == "detection" for a in expected)

        # Cut at the first point where a session is open between events.
        first = runtime()
        head = []
        cut = None
        for i, event in enumerate(faulty):
            head += first.ingest(event)
            if first._session is not None:
                cut = i + 1
                break
        assert cut is not None
        snapshot = json.loads(json.dumps(first.checkpoint()))
        assert snapshot["runtime"]["session"] is not None

        resumed = restore_runtime(detector, snapshot)
        tail = resumed.ingest_many(faulty[cut:])
        tail += resumed.finish_stream(segment.end)
        assert head + tail == expected
        assert _canon(head + tail) == _canon(expected)


class TestCheckpointFile:
    def test_save_and_restore_from_file(self, detector, live_events, tmp_path):
        runtime = _runtime(detector, 3.0 * HOUR)
        runtime.ingest_many(live_events[: len(live_events) // 3])
        path = tmp_path / "gateway.ckpt.json"
        save_checkpoint(runtime, path)
        assert path.exists()
        resumed = restore_from_file(detector, path)
        assert resumed.state_dict() == runtime.state_dict()

    def test_version_mismatch_rejected(self, detector, live_events, tmp_path):
        runtime = _runtime(detector, 3.0 * HOUR)
        path = tmp_path / "gateway.ckpt.json"
        save_checkpoint(runtime, path)
        state = load_checkpoint(path)
        state["version"] = 999
        with pytest.raises(CheckpointError):
            restore_runtime(detector, state)

    def test_model_mismatch_rejected(self, detector, registry, tmp_path):
        runtime = _runtime(detector, 0.0)
        state = runtime.checkpoint()
        state["model"]["num_groups"] = state["model"]["num_groups"] + 1
        with pytest.raises(CheckpointError):
            restore_runtime(detector, state)

    def test_not_a_checkpoint_rejected(self, detector):
        with pytest.raises(CheckpointError):
            restore_runtime(detector, {"hello": "world"})

    def test_missing_file_raises_checkpoint_error_naming_path(self, tmp_path):
        path = tmp_path / "nowhere.ckpt.json"
        with pytest.raises(CheckpointError, match="cannot read checkpoint") as exc:
            load_checkpoint(path)
        assert str(path) in str(exc.value)

    def test_corrupt_file_raises_checkpoint_error_naming_path(self, tmp_path):
        path = tmp_path / "gateway.ckpt.json"
        path.write_text("{this is not json")
        with pytest.raises(CheckpointError, match="corrupt checkpoint") as exc:
            load_checkpoint(path)
        assert str(path) in str(exc.value)

    def test_v4_checkpoint_round_trips_provenance(
        self, detector, live_events, tmp_path
    ):
        from repro.streaming.checkpoint import CHECKPOINT_VERSION
        from repro.telemetry.provenance import canonical_record_bytes

        runtime = _runtime(detector, 3.0 * HOUR)
        runtime.ingest_many(_adversarial(live_events, seed=5))
        assert runtime.provenance.records(), "scenario must record evidence"
        path = tmp_path / "gateway.ckpt.json"
        save_checkpoint(runtime, path)
        state = load_checkpoint(path)
        assert state["version"] == CHECKPOINT_VERSION == 5
        assert state["runtime"]["provenance"] is not None
        resumed = restore_from_file(detector, path)
        assert [
            canonical_record_bytes(r) for r in resumed.provenance.records()
        ] == [canonical_record_bytes(r) for r in runtime.provenance.records()]
        assert resumed.provenance.seq == runtime.provenance.seq
        assert resumed.provenance.chain == runtime.provenance.chain

    def test_pre_provenance_checkpoint_restores_empty_recorder(
        self, detector, live_events, tmp_path
    ):
        # A v1-v3 checkpoint has no ``provenance`` section; restoring one
        # must reset the recorder, not crash.
        runtime = _runtime(detector, 3.0 * HOUR)
        runtime.ingest_many(_adversarial(live_events, seed=5))
        state = runtime.checkpoint()
        del state["runtime"]["provenance"]
        resumed = restore_runtime(detector, state)
        assert resumed.provenance.records() == []
        assert resumed.provenance.seq == 0

    def test_truncated_file_raises_checkpoint_error(
        self, detector, live_events, tmp_path
    ):
        # A crash mid-write without the atomic rename would leave half a
        # JSON document; loading it must be one actionable error, not a
        # JSONDecodeError traceback.
        runtime = _runtime(detector, 3.0 * HOUR)
        runtime.ingest_many(live_events[: len(live_events) // 3])
        path = tmp_path / "gateway.ckpt.json"
        save_checkpoint(runtime, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            load_checkpoint(path)
