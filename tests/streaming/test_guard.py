"""Tests for the ingest guard and the shared drop log."""

import json
import math

from repro.model import DeviceRegistry, Event, SensorType, binary_sensor
from repro.streaming import (
    BEFORE_START,
    EMPTY_DEVICE_ID,
    NON_FINITE_TIMESTAMP,
    NON_FINITE_VALUE,
    UNKNOWN_DEVICE,
    DropLog,
    DroppedEvent,
    IngestGuard,
)


def _registry():
    return DeviceRegistry([binary_sensor("motion", SensorType.MOTION, "hall")])


class TestIngestGuard:
    def test_valid_event_passes(self):
        guard = IngestGuard(_registry())
        assert guard.check(Event(1.0, "motion", 1.0)) is None

    def test_nan_value_rejected(self):
        guard = IngestGuard(_registry())
        dropped = guard.check(Event(1.0, "motion", float("nan")))
        assert dropped is not None and dropped.reason == NON_FINITE_VALUE

    def test_inf_timestamp_rejected(self):
        guard = IngestGuard(_registry())
        dropped = guard.check(Event(float("inf"), "motion", 1.0))
        assert dropped is not None and dropped.reason == NON_FINITE_TIMESTAMP

    def test_empty_device_id_rejected(self):
        guard = IngestGuard(_registry())
        dropped = guard.check(Event(1.0, "", 1.0))
        assert dropped is not None and dropped.reason == EMPTY_DEVICE_ID

    def test_unknown_device_rejected(self):
        guard = IngestGuard(_registry())
        dropped = guard.check(Event(1.0, "ghost", 1.0))
        assert dropped is not None and dropped.reason == UNKNOWN_DEVICE

    def test_before_start_rejected(self):
        guard = IngestGuard(_registry(), start=100.0)
        dropped = guard.check(Event(99.0, "motion", 1.0))
        assert dropped is not None and dropped.reason == BEFORE_START

    def test_admit_records_in_log(self):
        log = DropLog()
        guard = IngestGuard(_registry(), log)
        guard.admit(Event(1.0, "ghost", 1.0))
        guard.admit(Event(2.0, "motion", 1.0))  # valid: no record
        assert log.total == 1
        assert log.count(UNKNOWN_DEVICE) == 1


class TestDropLog:
    def test_sample_bound(self):
        log = DropLog(max_samples=2)
        for i in range(5):
            log.record(DroppedEvent(float(i), "d", 1.0, UNKNOWN_DEVICE))
        assert log.total == 5
        assert len(log.samples) == 2

    def test_state_round_trip_preserves_non_finite_values(self):
        log = DropLog()
        log.record(DroppedEvent(1.0, "d", float("nan"), NON_FINITE_VALUE))
        log.record(DroppedEvent(2.0, "d", float("inf"), NON_FINITE_VALUE))
        state = json.loads(json.dumps(log.state_dict()))
        restored = DropLog.from_state_dict(state)
        assert restored.total == 2
        assert math.isnan(restored.samples[0].value)
        assert restored.samples[1].value == float("inf")

    def test_summary_is_ordered_and_sparse(self):
        log = DropLog()
        log.record(DroppedEvent(1.0, "d", 1.0, UNKNOWN_DEVICE))
        log.record(DroppedEvent(2.0, "", 1.0, EMPTY_DEVICE_ID))
        assert list(log.summary()) == [EMPTY_DEVICE_ID, UNKNOWN_DEVICE]
