"""Tests for the hardened gateway runtime: guard + reorder + supervision.

Includes the headline resilience property: a quarantined-then-recovered
device raises exactly one ``device_silence`` and one ``device_recovered``
alert and no spurious correlation violations, because its bits are masked
out of the correlation check while quarantined.
"""

import numpy as np
import pytest

from repro.core import DiceDetector
from repro.model import (
    DeviceRegistry,
    Event,
    SensorType,
    Trace,
    binary_sensor,
)
from repro.streaming import (
    DUPLICATE,
    NON_FINITE_VALUE,
    TOO_LATE,
    UNKNOWN_DEVICE,
    HardenedOnlineDice,
    OnlineDice,
    SupervisorPolicy,
)


@pytest.fixture
def trio_registry():
    return DeviceRegistry(
        [binary_sensor(n, SensorType.MOTION, "r") for n in ("a", "b", "c")]
    )


def trio_trace(registry, lo, hi, silent=None):
    """All three sensors fire every 30 s; optionally sensor ``b`` goes
    silent over the ``silent=(t0, t1)`` interval (a fail-stop-shaped pipe
    outage)."""
    times, devs, vals = [], [], []
    for t in np.arange(lo, hi, 30.0):
        for d in range(3):
            if silent and d == 1 and silent[0] <= t < silent[1]:
                continue
            times.append(t + d)
            devs.append(d)
            vals.append(1.0)
    return Trace(
        registry,
        np.array(times),
        np.array(devs, dtype=np.int32),
        np.array(vals),
        start=lo,
        end=hi,
    )


@pytest.fixture
def trio_detector(trio_registry):
    return DiceDetector(trio_registry).fit(trio_trace(trio_registry, 0.0, 7200.0))


FAST_POLICY = SupervisorPolicy(silence_seconds=35.0, quarantine_seconds=60.0)


def _canon(alerts):
    """Alert-sequence rendering independent of the process hash seed."""
    return [
        (a.kind, a.time, a.check, a.cases, tuple(sorted(a.devices)), a.converged)
        for a in alerts
    ]


class TestIngestGuarding:
    def test_malformed_events_never_raise(self, trio_detector):
        runtime = HardenedOnlineDice(trio_detector, start=7200.0)
        runtime.ingest(Event(7300.0, "ghost", 1.0))
        runtime.ingest(Event(7301.0, "", 1.0))
        runtime.ingest(Event(7302.0, "a", float("nan")))
        runtime.ingest(Event(float("nan"), "a", 1.0))
        assert runtime.drops.count(UNKNOWN_DEVICE) == 1
        assert runtime.drops.count(NON_FINITE_VALUE) == 1
        assert runtime.drops.total == 4

    def test_garbage_from_known_device_counts_as_error(self, trio_detector):
        runtime = HardenedOnlineDice(
            trio_detector,
            start=7200.0,
            policy=SupervisorPolicy(error_threshold=2),
        )
        alerts = runtime.ingest(Event(7300.0, "a", float("nan")))
        assert alerts == []
        alerts = runtime.ingest(Event(7301.0, "a", float("inf")))
        assert [a.kind for a in alerts] == ["device_errors"]
        assert runtime.supervisor.quarantined == frozenset({"a"})

    def test_too_late_events_counted_not_raised(self, trio_detector):
        runtime = HardenedOnlineDice(
            trio_detector, start=7200.0, lateness_seconds=10.0
        )
        runtime.ingest(Event(8000.0, "a", 1.0))
        runtime.ingest(Event(7200.0, "b", 1.0))  # 790 s late, budget is 10 s
        assert runtime.drops.count(TOO_LATE) == 1


class TestReorderIntegration:
    def test_shuffled_replay_matches_plain_runtime(self, trio_detector, trio_registry):
        live = trio_trace(trio_registry, 7200.0, 10800.0)
        plain = OnlineDice(trio_detector, start=7200.0)
        expected = plain.replay(live)

        events = list(live)
        rng = np.random.default_rng(5)
        arrival = np.array([e.timestamp for e in events])
        arrival += rng.uniform(0.0, 90.0, size=len(events))
        shuffled = [events[int(i)] for i in np.argsort(arrival, kind="stable")]

        hardened = HardenedOnlineDice(
            trio_detector, start=7200.0, lateness_seconds=120.0
        )
        fresh = hardened.ingest_many(shuffled)
        fresh += hardened.finish_stream(live.end)
        assert _canon(fresh) == _canon(expected)
        assert hardened.drops.total == 0

    def test_duplicate_delivery_is_transparent(self, trio_detector, trio_registry):
        live = trio_trace(trio_registry, 7200.0, 10800.0)
        plain = OnlineDice(trio_detector, start=7200.0)
        expected = plain.replay(live)

        doubled = []
        for event in live:
            doubled.append(event)
            doubled.append(event)  # immediate re-delivery
        hardened = HardenedOnlineDice(
            trio_detector, start=7200.0, lateness_seconds=120.0
        )
        fresh = hardened.ingest_many(doubled)
        fresh += hardened.finish_stream(live.end)
        assert _canon(fresh) == _canon(expected)
        assert hardened.drops.count(DUPLICATE) == len(list(live))


class TestQuarantineMasking:
    def test_silence_then_recovery_exact_alerts(self, trio_detector, trio_registry):
        live = trio_trace(trio_registry, 7200.0, 14400.0, silent=(9000.0, 12000.0))
        runtime = HardenedOnlineDice(
            trio_detector, start=7200.0, lateness_seconds=0.0, policy=FAST_POLICY
        )
        alerts = runtime.replay(live)
        kinds = [a.kind for a in alerts]
        assert kinds.count("device_silence") == 1
        assert kinds.count("device_recovered") == 1
        # The masked correlation check keeps the dead sensor from flooding
        # the detector: no detections, no identifications.
        assert kinds.count("detection") == 0
        assert kinds.count("identification") == 0
        silence = next(a for a in alerts if a.kind == "device_silence")
        recovered = next(a for a in alerts if a.kind == "device_recovered")
        assert silence.devices == frozenset({"b"})
        assert recovered.devices == frozenset({"b"})
        assert silence.time < recovered.time
        assert runtime.supervisor.quarantined == frozenset()

    def test_without_supervision_dead_sensor_floods(self, trio_detector, trio_registry):
        """Sanity: the masking is load-bearing — the plain runtime drowns."""
        live = trio_trace(trio_registry, 7200.0, 14400.0, silent=(9000.0, 12000.0))
        plain = OnlineDice(trio_detector, start=7200.0)
        alerts = plain.replay(live)
        assert any(a.kind == "detection" for a in alerts)

    def test_unquarantined_faults_still_detected(self, trio_detector, trio_registry):
        """A sensor that keeps chattering wrongly (not silent) is NOT
        quarantined, and detection still fires."""
        live = trio_trace(trio_registry, 7200.0, 10800.0)
        # sensor b speaks but a brand-new fourth pattern appears: a goes
        # quiet while still b+c fire -> never-seen state set.
        events = [e for e in live if not (e.device_id == "a" and e.timestamp >= 9000.0)]
        runtime = HardenedOnlineDice(
            trio_detector,
            start=7200.0,
            lateness_seconds=0.0,
            policy=SupervisorPolicy(silence_seconds=3000.0, quarantine_seconds=6000.0),
        )
        fresh = runtime.ingest_many(events)
        fresh += runtime.finish_stream(live.end)
        assert any(a.kind == "detection" for a in fresh)
