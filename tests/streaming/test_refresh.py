"""Online context refresh: drift detection, staged re-fit, persistence.

The headline properties:

* a drifted stream with refresh enabled stops alerting once the context
  is re-learned, while the refresh-disabled twin alerts forever;
* a genuine sustained-violation threshold gates the re-fit — sporadic
  violations never retrain the model;
* checkpoint/restore carries the refresh history: resuming against a
  *freshly fitted* detector re-applies the recorded batches and
  reproduces the uninterrupted alert stream byte for byte.
"""

import json

import numpy as np
import pytest

from repro.core import DiceDetector
from repro.faults import inject_seasonal_shift
from repro.streaming import (
    ContextRefresher,
    HardenedOnlineDice,
    RefreshPolicy,
    restore_runtime,
)
from tests.conftest import HOUR, make_cyclic_trace

ENABLED = RefreshPolicy(
    enabled=True,
    violation_window=20,
    violation_threshold=0.6,
    collect_windows=30,
    cooldown_windows=60,
)


@pytest.fixture
def drifted_trace(registry):
    trace = make_cyclic_trace(registry, hours=9.0)
    drifted, _drift = inject_seasonal_shift(
        trace, 4.5 * HOUR, np.random.default_rng(7)
    )
    return drifted


def _fit(registry, trace):
    return DiceDetector(registry).fit(trace.slice(0.0, 3.0 * HOUR))


def _runtime(detector, refresh):
    return HardenedOnlineDice(
        detector, start=3.0 * HOUR, lateness_seconds=120.0, refresh=refresh
    )


def _detections_after(alerts, t0):
    return [a for a in alerts if a.kind == "detection" and a.time >= t0]


class TestPolicy:
    def test_disabled_by_default(self):
        assert RefreshPolicy().enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"violation_window": 0},
            {"violation_threshold": 0.0},
            {"violation_threshold": 1.5},
            {"collect_windows": 1},
            {"cooldown_windows": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RefreshPolicy(**kwargs)


class TestRefresherStaging:
    @pytest.fixture
    def refresher(self, registry):
        trace = make_cyclic_trace(registry, hours=4.0)
        detector = _fit(registry, trace)
        return ContextRefresher(detector, ENABLED)

    def test_unfitted_detector_rejected(self, registry):
        with pytest.raises(ValueError):
            ContextRefresher(DiceDetector(registry), ENABLED)

    def test_disabled_never_declares(self, registry):
        trace = make_cyclic_trace(registry, hours=4.0)
        refresher = ContextRefresher(_fit(registry, trace), RefreshPolicy())
        for i in range(100):
            assert refresher.observe(0b11, frozenset(), True, float(i)) is None
        assert refresher.stats()["declared"] == 0

    def test_sporadic_violations_do_not_declare(self, refresher):
        # Alternating hit/miss stays at a 50% rate, under the 60% bar.
        for i in range(200):
            out = refresher.observe(0b1, frozenset(), i % 2 == 0, float(i))
            assert out is None
        assert refresher.phase == "idle"

    def test_sustained_violations_declare_then_apply(self, refresher):
        events = []
        for i in range(ENABLED.violation_window + ENABLED.collect_windows):
            out = refresher.observe(0b101, frozenset(("hue_kitchen",)), True, float(i))
            if out:
                events.append((i, out))
        kinds = [kind for _, kind in events]
        assert kinds == ["declared", "applied"]
        stats = refresher.stats()
        assert stats["declared"] == 1
        assert stats["applied"] == 1
        # The collected mask was interned into the live group registry.
        assert stats["groups_added"] >= 1
        assert refresher.phase == "cooldown"

    def test_cooldown_blocks_redeclaration(self, refresher):
        for i in range(ENABLED.violation_window + ENABLED.collect_windows):
            refresher.observe(0b101, frozenset(), True, float(i))
        assert refresher.phase == "cooldown"
        # Sustained violations during cooldown change nothing.
        for i in range(ENABLED.cooldown_windows - 1):
            assert refresher.observe(0b101, frozenset(), True, 1000.0 + i) is None
        assert refresher.stats()["declared"] == 1

    def test_refresh_merges_transitions(self, refresher):
        model = refresher.detector.model
        before = len(model.groups)
        for i in range(ENABLED.violation_window + ENABLED.collect_windows):
            refresher.observe(0b101, frozenset(), True, float(i))
        assert len(model.groups) > before
        new_gid = model.groups.lookup(0b101)
        assert new_gid is not None
        # The collected self-loop is now a known transition.
        assert model.transitions.g2g.probability(new_gid, new_gid) > 0.0


class TestGracefulDegradation:
    def test_refresh_collapses_sustained_alert_rate(self, registry, drifted_trace):
        onset, settle = 4.5 * HOUR, HOUR
        rates = {}
        for enabled in (False, True):
            detector = _fit(registry, drifted_trace)
            runtime = _runtime(detector, RefreshPolicy(enabled=enabled))
            alerts = runtime.replay(drifted_trace.slice(3.0 * HOUR, drifted_trace.end))
            tail = _detections_after(alerts, onset + settle)
            hours = (drifted_trace.end - onset - settle) / HOUR
            rates[enabled] = len(tail) / hours
        assert rates[True] < rates[False] / 4.0, rates

    def test_health_surface_reports_refresh(self, registry, drifted_trace):
        detector = _fit(registry, drifted_trace)
        runtime = _runtime(detector, ENABLED)
        runtime.replay(drifted_trace.slice(3.0 * HOUR, drifted_trace.end))
        health = runtime.health()
        assert health["refresh"]["enabled"] is True
        assert health["refresh"]["applied"] >= 1
        assert health["refresh"]["groups_added"] >= 1


class TestCheckpointWithRefresh:
    def _canon(self, alerts):
        return repr(
            [
                (a.kind, a.time, a.check, a.cases, tuple(sorted(a.devices)), a.converged)
                for a in alerts
            ]
        )

    @pytest.mark.parametrize("fraction", [0.5, 0.8])
    def test_resume_after_refresh_reproduces_alerts(
        self, registry, drifted_trace, fraction
    ):
        start, end = 3.0 * HOUR, drifted_trace.end
        events = list(drifted_trace.slice(start, end))

        uninterrupted = _runtime(_fit(registry, drifted_trace), ENABLED)
        expected = uninterrupted.ingest_many(events)
        expected += uninterrupted.finish_stream(end)
        assert uninterrupted.refresher.stats()["applied"] >= 1

        cut = int(len(events) * fraction)
        first = _runtime(_fit(registry, drifted_trace), ENABLED)
        head = first.ingest_many(events[:cut])
        snapshot = json.loads(json.dumps(first.checkpoint()))

        # The restore target is a *freshly fitted* detector: the refresh
        # history rides in the checkpoint and is re-applied on load.
        resumed = restore_runtime(
            _fit(registry, drifted_trace), snapshot, refresh=ENABLED
        )
        tail = resumed.ingest_many(events[cut:])
        tail += resumed.finish_stream(end)

        assert self._canon(head + tail) == self._canon(expected)
        assert (
            resumed.refresher.stats()["applied"]
            == uninterrupted.refresher.stats()["applied"]
        )

    def test_mutated_detector_rejected_as_restore_target(
        self, registry, drifted_trace
    ):
        # Restoring against the *already refreshed* detector would
        # double-apply the history; the fingerprint check refuses it.
        start, end = 3.0 * HOUR, drifted_trace.end
        runtime = _runtime(_fit(registry, drifted_trace), ENABLED)
        runtime.replay(drifted_trace.slice(start, end))
        assert runtime.refresher.stats()["applied"] >= 1
        snapshot = json.loads(json.dumps(runtime.checkpoint()))
        from repro.streaming import CheckpointError

        with pytest.raises(CheckpointError):
            restore_runtime(runtime.detector, snapshot, refresh=ENABLED)

    def test_pre_refresh_checkpoint_still_loads(self, registry, drifted_trace):
        # A v2-era snapshot has no "refresh" key: load_state(None) resets.
        start = 3.0 * HOUR
        runtime = _runtime(_fit(registry, drifted_trace), RefreshPolicy())
        runtime.ingest_many(list(drifted_trace.slice(start, 4.0 * HOUR)))
        snapshot = json.loads(json.dumps(runtime.checkpoint()))
        snapshot["runtime"].pop("refresh", None)
        snapshot.pop("refresh", None)
        resumed = restore_runtime(_fit(registry, drifted_trace), snapshot)
        assert resumed.refresher.stats()["applied"] == 0
