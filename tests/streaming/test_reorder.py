"""Tests for the bounded reorder buffer and its watermark semantics."""

import json

import numpy as np

from repro.model import Event
from repro.streaming import DUPLICATE, TOO_LATE, DropLog, ReorderBuffer


def _ev(t, device="d", value=1.0):
    return Event(float(t), device, float(value))


class TestReorderBuffer:
    def test_in_order_stream_released_behind_watermark(self):
        buf = ReorderBuffer(lateness_seconds=10.0)
        assert buf.push(_ev(0.0)) == []
        assert buf.push(_ev(5.0)) == []
        released = buf.push(_ev(20.0))
        assert [e.timestamp for e in released] == [0.0, 5.0]
        assert buf.pending == 1

    def test_late_event_within_budget_resorted(self):
        buf = ReorderBuffer(lateness_seconds=30.0)
        buf.push(_ev(100.0))
        buf.push(_ev(90.0))  # late but inside the budget
        released = buf.flush()
        assert [e.timestamp for e in released] == [90.0, 100.0]

    def test_event_beyond_budget_dropped_and_counted(self):
        log = DropLog()
        buf = ReorderBuffer(lateness_seconds=10.0, log=log)
        buf.push(_ev(100.0))  # watermark -> 90
        assert buf.push(_ev(50.0)) == []
        assert log.count(TOO_LATE) == 1
        assert buf.pending == 1

    def test_exact_duplicate_dropped(self):
        log = DropLog()
        buf = ReorderBuffer(lateness_seconds=60.0, log=log)
        buf.push(_ev(10.0))
        buf.push(_ev(10.0))
        assert log.count(DUPLICATE) == 1
        assert buf.pending == 1

    def test_same_timestamp_different_device_kept(self):
        buf = ReorderBuffer(lateness_seconds=60.0)
        buf.push(_ev(10.0, "a"))
        buf.push(_ev(10.0, "b"))
        assert buf.pending == 2

    def test_overflow_force_releases_and_advances_watermark(self):
        log = DropLog()
        buf = ReorderBuffer(lateness_seconds=1000.0, max_pending=3, log=log)
        for t in (1.0, 2.0, 3.0):
            assert buf.push(_ev(t)) == []
        released = buf.push(_ev(4.0))
        assert [e.timestamp for e in released] == [1.0]
        assert buf.watermark == 1.0
        # An arrival older than the forced watermark is now too late.
        buf.push(_ev(0.5))
        assert log.count(TOO_LATE) == 1

    def test_advance_to_releases_event_free_time(self):
        buf = ReorderBuffer(lateness_seconds=10.0)
        buf.push(_ev(0.0))
        assert buf.advance_to(5.0) == []
        released = buf.advance_to(50.0)
        assert [e.timestamp for e in released] == [0.0]

    def test_watermark_monotone_under_random_arrivals(self):
        rng = np.random.default_rng(7)
        buf = ReorderBuffer(lateness_seconds=5.0)
        last_released = float("-inf")
        for t in rng.uniform(0.0, 100.0, size=500):
            for event in buf.push(_ev(round(t, 3))):
                assert event.timestamp >= last_released
                last_released = event.timestamp
        for event in buf.flush():
            assert event.timestamp >= last_released
            last_released = event.timestamp

    def test_state_round_trip(self):
        buf = ReorderBuffer(lateness_seconds=30.0, max_pending=16)
        buf.push(_ev(100.0))
        buf.push(_ev(95.0))
        state = json.loads(json.dumps(buf.state_dict()))
        clone = ReorderBuffer(lateness_seconds=1.0)
        clone.load_state(state)
        assert clone.lateness_seconds == 30.0
        assert clone.max_pending == 16
        assert clone.watermark == buf.watermark
        assert [e.timestamp for e in clone.flush()] == [95.0, 100.0]
