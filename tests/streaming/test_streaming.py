"""Tests for the online windower and the streaming runtime.

The central property: replaying a trace through the streaming path
produces exactly the same windows and verdicts as the batch path.
"""

import numpy as np
import pytest

from repro.core import DiceDetector, StateSetEncoder
from repro.model import Event
from repro.streaming import OnlineDice, OnlineWindower
from tests.conftest import HOUR, make_cyclic_trace


@pytest.fixture
def encoder(registry, cyclic_trace):
    return StateSetEncoder(registry, 60.0).fit(cyclic_trace)


class TestOnlineWindower:
    def test_masks_match_batch_encoder(self, registry, encoder, cyclic_trace):
        batch = encoder.encode(cyclic_trace)
        windower = OnlineWindower(encoder)
        snapshots = []
        for event in cyclic_trace:
            snapshots.extend(windower.push(event))
        snapshots.extend(windower.advance_to(cyclic_trace.end))
        assert len(snapshots) == len(batch)
        for snapshot, mask in zip(snapshots, batch.masks):
            assert snapshot.mask == mask

    def test_actuator_activations_match(self, registry, encoder, cyclic_trace):
        batch = encoder.encode(cyclic_trace)
        windower = OnlineWindower(encoder)
        snapshots = []
        for event in cyclic_trace:
            snapshots.extend(windower.push(event))
        snapshots.extend(windower.advance_to(cyclic_trace.end))
        for snapshot, acts in zip(snapshots, batch.actuator_activations):
            assert snapshot.actuator_activations == acts

    def test_late_event_rejected(self, encoder):
        windower = OnlineWindower(encoder)
        windower.push(Event(200.0, "motion_kitchen", 1.0))
        with pytest.raises(ValueError):
            windower.push(Event(10.0, "motion_kitchen", 1.0))

    def test_unknown_device_rejected(self, encoder):
        windower = OnlineWindower(encoder)
        with pytest.raises(KeyError):
            windower.push(Event(1.0, "ghost", 1.0))

    def test_unfitted_encoder_rejected(self, registry):
        with pytest.raises(ValueError):
            OnlineWindower(StateSetEncoder(registry, 60.0))

    def test_flush_partial_window(self, encoder):
        windower = OnlineWindower(encoder)
        windower.push(Event(10.0, "motion_kitchen", 1.0))
        snapshot = windower.flush()
        assert snapshot.mask == 1 << 0


class TestOnlineDice:
    def test_requires_fitted_detector(self, registry):
        with pytest.raises(ValueError):
            OnlineDice(DiceDetector(registry))

    def test_clean_replay_matches_batch(self, fitted_detector, live_segment):
        batch = fitted_detector.process(live_segment)
        online = OnlineDice(fitted_detector, start=live_segment.start)
        online.replay(live_segment)
        detections = [a for a in online.alerts if a.kind == "detection"]
        assert len(detections) == len(batch.detections)

    def test_faulty_replay_matches_batch(self, fitted_detector, live_segment):
        faulty = live_segment.without_device("motion_kitchen")
        batch = fitted_detector.process(faulty)
        online = OnlineDice(fitted_detector, start=faulty.start)
        online.replay(faulty)
        detections = [a for a in online.alerts if a.kind == "detection"]
        identifications = [a for a in online.alerts if a.kind == "identification"]
        assert len(detections) == len(batch.detections)
        assert len(identifications) == len(batch.identifications)
        assert detections[0].time == batch.first_detection.time
        assert (
            identifications[0].devices == batch.first_identification.devices
        )

    def test_alert_times_align_with_window_ends(self, fitted_detector, live_segment):
        faulty = live_segment.without_device("motion_kitchen")
        online = OnlineDice(fitted_detector, start=faulty.start)
        online.replay(faulty)
        for alert in online.alerts:
            assert (alert.time - faulty.start) % 60.0 == pytest.approx(0.0)

    def test_dataset_scale_parity(self, small_house):
        """Batch and streaming agree on a real generated dataset slice."""
        trace = small_house.trace
        detector = DiceDetector(trace.registry).fit(trace.slice(0, 72 * HOUR))
        segment = trace.slice(96 * HOUR, 102 * HOUR)
        batch = detector.process(segment)
        online = OnlineDice(detector, start=segment.start)
        online.replay(segment)
        detections = [a for a in online.alerts if a.kind == "detection"]
        assert len(detections) == len(batch.detections)
