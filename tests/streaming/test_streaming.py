"""Tests for the online windower and the streaming runtime.

The central property: replaying a trace through the streaming path
produces exactly the same windows and verdicts as the batch path.
"""

import numpy as np
import pytest

from repro.core import DiceDetector, StateSetEncoder
from repro.model import Event
from repro.streaming import OnlineDice, OnlineWindower, ReorderBuffer
from repro.streaming.windower import _NumericAccumulator
from tests.conftest import HOUR


@pytest.fixture
def encoder(registry, cyclic_trace):
    return StateSetEncoder(registry, 60.0).fit(cyclic_trace)


class TestOnlineWindower:
    def test_masks_match_batch_encoder(self, registry, encoder, cyclic_trace):
        batch = encoder.encode(cyclic_trace)
        windower = OnlineWindower(encoder)
        snapshots = []
        for event in cyclic_trace:
            snapshots.extend(windower.push(event))
        snapshots.extend(windower.advance_to(cyclic_trace.end))
        assert len(snapshots) == len(batch)
        for snapshot, mask in zip(snapshots, batch.masks):
            assert snapshot.mask == mask

    def test_actuator_activations_match(self, registry, encoder, cyclic_trace):
        batch = encoder.encode(cyclic_trace)
        windower = OnlineWindower(encoder)
        snapshots = []
        for event in cyclic_trace:
            snapshots.extend(windower.push(event))
        snapshots.extend(windower.advance_to(cyclic_trace.end))
        for snapshot, acts in zip(snapshots, batch.actuator_activations):
            assert snapshot.actuator_activations == acts

    def test_late_event_rejected(self, encoder):
        windower = OnlineWindower(encoder)
        windower.push(Event(200.0, "motion_kitchen", 1.0))
        with pytest.raises(ValueError):
            windower.push(Event(10.0, "motion_kitchen", 1.0))

    def test_unknown_device_rejected(self, encoder):
        windower = OnlineWindower(encoder)
        with pytest.raises(KeyError):
            windower.push(Event(1.0, "ghost", 1.0))

    def test_unfitted_encoder_rejected(self, registry):
        with pytest.raises(ValueError):
            OnlineWindower(StateSetEncoder(registry, 60.0))

    def test_flush_partial_window(self, encoder):
        windower = OnlineWindower(encoder)
        windower.push(Event(10.0, "motion_kitchen", 1.0))
        snapshot = windower.flush()
        assert snapshot.mask == 1 << 0


class TestNumericAccumulatorDegenerate:
    """Single-sample windows: skew/trend must be False by construction, not
    by hoping ``s2/n - mean^2`` cancels to exactly zero in floats."""

    def test_empty_window(self):
        acc = _NumericAccumulator()
        assert acc.bits(0.0) == (False, False, False)

    def test_single_sample_no_skew_no_trend(self):
        acc = _NumericAccumulator()
        # A value whose square cancels imperfectly in naive float arithmetic.
        acc.add(1e8 + 0.1)
        skew, trend, above = acc.bits(0.0)
        assert skew is False
        assert trend is False
        assert above is True

    def test_single_sample_mean_bit_respects_threshold(self):
        acc = _NumericAccumulator()
        acc.add(5.0)
        assert acc.bits(10.0) == (False, False, False)
        assert acc.bits(1.0) == (False, False, True)

    def test_single_sample_matches_batch_encoder(self, registry):
        """Both paths must agree on a window holding exactly one reading."""
        from repro.model import Trace

        trace = Trace(
            registry,
            np.array([10.0, 30.0]),
            np.array([2, 0], dtype=np.int32),  # temp_kitchen once, motion once
            np.array([1e8 + 0.1, 1.0]),
            start=0.0,
            end=60.0,
        )
        encoder = StateSetEncoder(registry, 60.0).fit(trace)
        batch = encoder.encode(trace)
        windower = OnlineWindower(encoder)
        for event in trace:
            windower.push(event)
        snapshot = windower.flush()
        assert snapshot.mask == batch.masks[0]
        skew_bit, trend_bit, _ = encoder.layout.bits_of_device("temp_kitchen")
        assert not snapshot.mask >> skew_bit & 1
        assert not snapshot.mask >> trend_bit & 1


class TestAdversarialPipeEquivalence:
    """Satellite property: a trace shuffled within the lateness budget,
    pushed through the reorder buffer, yields identical WindowSnapshot
    masks to the sorted batch encoding."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_shuffled_within_budget_matches_batch(
        self, registry, encoder, cyclic_trace, seed
    ):
        budget = 90.0
        rng = np.random.default_rng(seed)
        events = list(cyclic_trace)
        arrival = np.array([e.timestamp for e in events])
        arrival += rng.uniform(0.0, budget, size=len(events))
        shuffled = [events[int(i)] for i in np.argsort(arrival, kind="stable")]
        assert shuffled != events  # the pipe really is adversarial

        buffer = ReorderBuffer(lateness_seconds=budget)
        windower = OnlineWindower(encoder)
        snapshots = []
        for event in shuffled:
            for released in buffer.push(event):
                snapshots.extend(windower.push(released))
        for released in buffer.flush():
            snapshots.extend(windower.push(released))
        snapshots.extend(windower.advance_to(cyclic_trace.end))

        batch = encoder.encode(cyclic_trace)
        assert len(snapshots) == len(batch)
        for snapshot, mask, acts in zip(
            snapshots, batch.masks, batch.actuator_activations
        ):
            assert snapshot.mask == mask
            assert snapshot.actuator_activations == acts


class TestOnlineDice:
    def test_requires_fitted_detector(self, registry):
        with pytest.raises(ValueError):
            OnlineDice(DiceDetector(registry))

    def test_clean_replay_matches_batch(self, fitted_detector, live_segment):
        batch = fitted_detector.process(live_segment)
        online = OnlineDice(fitted_detector, start=live_segment.start)
        online.replay(live_segment)
        detections = [a for a in online.alerts if a.kind == "detection"]
        assert len(detections) == len(batch.detections)

    def test_faulty_replay_matches_batch(self, fitted_detector, live_segment):
        faulty = live_segment.without_device("motion_kitchen")
        batch = fitted_detector.process(faulty)
        online = OnlineDice(fitted_detector, start=faulty.start)
        online.replay(faulty)
        detections = [a for a in online.alerts if a.kind == "detection"]
        identifications = [a for a in online.alerts if a.kind == "identification"]
        assert len(detections) == len(batch.detections)
        assert len(identifications) == len(batch.identifications)
        assert detections[0].time == batch.first_detection.time
        assert (
            identifications[0].devices == batch.first_identification.devices
        )

    def test_alert_times_align_with_window_ends(self, fitted_detector, live_segment):
        faulty = live_segment.without_device("motion_kitchen")
        online = OnlineDice(fitted_detector, start=faulty.start)
        online.replay(faulty)
        for alert in online.alerts:
            assert (alert.time - faulty.start) % 60.0 == pytest.approx(0.0)

    def test_replay_returns_only_fresh_alerts(self, fitted_detector, live_segment):
        """Regression: a second replay on the same instance must not echo
        the first trace's alerts back."""
        faulty = live_segment.without_device("motion_kitchen")
        online = OnlineDice(fitted_detector, start=faulty.start)
        first = online.replay(faulty)
        assert first  # the fail-stop produces at least a detection
        assert first == online.alerts
        tail = faulty.shifted(faulty.duration)
        second = online.replay(tail)
        # The second call reports only its own alerts ...
        assert all(a.time > faulty.start + faulty.duration - 1e-9 for a in second)
        # ... while the cumulative history keeps both.
        assert online.alerts == first + second

    def test_dataset_scale_parity(self, small_house):
        """Batch and streaming agree on a real generated dataset slice."""
        trace = small_house.trace
        detector = DiceDetector(trace.registry).fit(trace.slice(0, 72 * HOUR))
        segment = trace.slice(96 * HOUR, 102 * HOUR)
        batch = detector.process(segment)
        online = OnlineDice(detector, start=segment.start)
        online.replay(segment)
        detections = [a for a in online.alerts if a.kind == "detection"]
        assert len(detections) == len(batch.detections)
