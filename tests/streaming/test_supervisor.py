"""Tests for the device supervisor's quarantine state machine."""

import json

import pytest

from repro.model import (
    DeviceRegistry,
    Event,
    SensorType,
    actuator,
    binary_sensor,
)
from repro.streaming import (
    DeviceStatus,
    DeviceSupervisor,
    SupervisorPolicy,
)


@pytest.fixture
def registry():
    return DeviceRegistry(
        [
            binary_sensor("motion", SensorType.MOTION, "hall"),
            binary_sensor("door", SensorType.DOOR, "hall"),
            actuator("bulb", SensorType.BULB, "hall"),
        ]
    )


POLICY = SupervisorPolicy(silence_seconds=60.0, quarantine_seconds=120.0)


class TestSilenceMachine:
    def test_healthy_until_silence_budget(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        assert sup.check_silence(50.0) == []
        assert sup.health_of("motion").status is DeviceStatus.HEALTHY

    def test_degraded_is_silent_alertwise(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        assert sup.check_silence(90.0) == []  # degradation emits no edge list
        assert sup.health_of("motion").status is DeviceStatus.DEGRADED

    def test_quarantine_emits_transition_once(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        edges = sup.check_silence(150.0)
        assert {e.device_id for e in edges} == {"motion", "door"}
        assert all(e.current is DeviceStatus.QUARANTINED for e in edges)
        # Re-checking does not re-raise.
        assert sup.check_silence(200.0) == []
        assert sup.quarantined == frozenset({"motion", "door"})

    def test_actuators_not_watched_by_default(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.check_silence(1000.0)
        assert "bulb" not in sup.quarantined
        watched = DeviceSupervisor(
            registry,
            SupervisorPolicy(
                silence_seconds=60.0, quarantine_seconds=120.0, watch_actuators=True
            ),
        )
        watched.check_silence(1000.0)
        assert "bulb" in watched.quarantined

    def test_recovery_path(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.check_silence(150.0)
        edges = sup.observe(Event(160.0, "motion", 1.0))
        assert len(edges) == 1
        assert edges[0].current is DeviceStatus.RECOVERED
        assert sup.health_of("motion").recoveries == 1
        # A second event settles back to HEALTHY with no new edge.
        assert sup.observe(Event(170.0, "motion", 1.0)) == []
        assert sup.health_of("motion").status is DeviceStatus.HEALTHY

    def test_event_keeps_device_healthy(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.observe(Event(100.0, "motion", 1.0))
        sup.observe(Event(100.0, "door", 1.0))
        assert sup.check_silence(150.0) == []

    def test_late_event_does_not_rewind_heartbeat(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.observe(Event(100.0, "motion", 1.0))
        sup.observe(Event(40.0, "motion", 1.0))
        assert sup.health_of("motion").last_seen == 100.0


class TestErrorMachine:
    def test_error_threshold_quarantines(self, registry):
        policy = SupervisorPolicy(
            silence_seconds=60.0, quarantine_seconds=120.0, error_threshold=3
        )
        sup = DeviceSupervisor(registry, policy)
        assert sup.record_error("motion", 10.0) == []
        assert sup.record_error("motion", 11.0) == []
        edges = sup.record_error("motion", 12.0)
        assert len(edges) == 1
        assert edges[0].reason == "errors"
        assert sup.quarantined == frozenset({"motion"})

    def test_recovery_resets_error_counter(self, registry):
        policy = SupervisorPolicy(
            silence_seconds=60.0, quarantine_seconds=120.0, error_threshold=2
        )
        sup = DeviceSupervisor(registry, policy)
        sup.record_error("motion", 1.0)
        sup.record_error("motion", 2.0)
        sup.observe(Event(3.0, "motion", 1.0))  # recovered
        assert sup.health_of("motion").errors == 0

    def test_unknown_device_ignored(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        assert sup.record_error("ghost", 1.0) == []
        assert sup.observe(Event(1.0, "ghost", 1.0)) == []


class TestPolicyValidation:
    def test_quarantine_before_silence_rejected(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(silence_seconds=100.0, quarantine_seconds=50.0)

    def test_zero_error_threshold_rejected(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(error_threshold=0)


class TestSupervisorState:
    def test_round_trip(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.observe(Event(30.0, "door", 1.0))
        sup.check_silence(150.0)  # quarantines motion
        state = json.loads(json.dumps(sup.state_dict()))
        clone = DeviceSupervisor(registry, SupervisorPolicy())
        clone.load_state(state)
        assert clone.policy == POLICY
        assert clone.quarantined == sup.quarantined
        assert clone.health_of("door").last_seen == 30.0
        assert clone.health_of("motion").silences == 1


class TestSilenceFastPath:
    """The O(1) amortised deadline bound must never change outcomes."""

    def test_early_checks_are_noops_until_deadline(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        # Hammer the fast path below the first deadline: nothing happens.
        for now in (1.0, 10.0, 30.0, 59.0, 60.0):
            assert sup.check_silence(now) == []
            assert sup.health_of("motion").status is DeviceStatus.HEALTHY
        # Strictly past the silence budget the degradation still fires.
        assert sup.check_silence(61.0) == []
        assert sup.health_of("motion").status is DeviceStatus.DEGRADED

    def test_fast_path_matches_always_scanning_twin(self, registry):
        """Differential: interleaved heartbeats + dense checks, one
        supervisor using the bound, one forced to full-scan every call."""
        fast = DeviceSupervisor(registry, POLICY)
        slow = DeviceSupervisor(registry, POLICY)
        heartbeats = {30.0: "motion", 80.0: "door", 200.0: "motion"}
        for now10 in range(0, 3000, 5):
            now = now10 / 10.0
            device = heartbeats.get(now)
            if device is not None:
                assert fast.observe(Event(now, device, 1.0)) == slow.observe(
                    Event(now, device, 1.0)
                )
            slow._next_check = float("-inf")  # disable the bound
            assert fast.check_silence(now) == slow.check_silence(now)
            for dev in ("motion", "door"):
                assert fast.health_of(dev).status is slow.health_of(dev).status
        assert fast.quarantined == slow.quarantined

    def test_recovery_rearms_the_bound(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.check_silence(90.0)  # both sensors degraded
        assert sup.health_of("motion").status is DeviceStatus.DEGRADED
        sup.observe(Event(91.0, "motion", 1.0))  # recovery heartbeat
        # The recovered device's fresh deadline (91 + 60) must re-enter the
        # bound: at 152 motion has re-degraded, and door — silent since 0 —
        # has crossed its quarantine budget (120).
        edges = sup.check_silence(152.0)
        assert {e.device_id for e in edges} == {"door"}
        assert sup.health_of("motion").status is DeviceStatus.DEGRADED

    def test_load_state_recomputes_the_bound(self, registry):
        sup = DeviceSupervisor(registry, POLICY)
        sup.observe(Event(30.0, "door", 1.0))
        state = json.loads(json.dumps(sup.state_dict()))
        clone = DeviceSupervisor(registry, SupervisorPolicy())
        clone.load_state(state)
        clone.check_silence(95.0)
        assert clone.health_of("door").status is DeviceStatus.DEGRADED
