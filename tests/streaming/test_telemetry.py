"""Gateway telemetry: parity, health surface, logs, checkpointed counters."""

import io
import json

import numpy as np
import pytest

from repro import telemetry
from repro.core import DiceDetector
from repro.faults import PipeFaultInjector, PipeFaultSpec, PipeFaultType
from repro.model import Event
from repro.streaming import (
    DeviceStatus,
    DeviceSupervisor,
    HardenedOnlineDice,
    SupervisorPolicy,
    restore_runtime,
)
from repro.streaming.checkpoint import CHECKPOINT_VERSION
from repro.streaming.supervisor import TRANSITIONS_TOTAL
from tests.conftest import HOUR

POLICY = SupervisorPolicy(silence_seconds=400.0, quarantine_seconds=800.0)


def _fit(registry, cyclic_trace, metrics):
    training = cyclic_trace.slice(0.0, 3.0 * HOUR)
    return DiceDetector(registry, metrics=metrics).fit(training)


def _runtime(detector):
    return HardenedOnlineDice(
        detector, start=3.0 * HOUR, lateness_seconds=120.0, policy=POLICY
    )


def _adversarial(events, seed=7):
    injector = PipeFaultInjector(
        np.random.default_rng(seed),
        [
            PipeFaultSpec(PipeFaultType.REORDER, max_delay_seconds=90.0),
            PipeFaultSpec(PipeFaultType.DUPLICATE, rate=0.1, max_delay_seconds=90.0),
            PipeFaultSpec(PipeFaultType.CORRUPT_VALUE, rate=0.02),
        ],
    )
    return injector.apply(events)


def _canon(alerts):
    return [
        (a.kind, a.time, a.check, a.cases, tuple(sorted(a.devices)), a.converged)
        for a in alerts
    ]


class TestParity:
    def test_telemetry_changes_no_output(self, registry, cyclic_trace):
        """The detection outcome must be identical with metrics on and off —
        instrumentation that changes behaviour is a bug, not overhead."""
        events = _adversarial(list(cyclic_trace.slice(3.0 * HOUR, 4.0 * HOUR)))
        end = cyclic_trace.end

        on = _runtime(_fit(registry, cyclic_trace, telemetry.MetricsRegistry()))
        off = _runtime(_fit(registry, cyclic_trace, telemetry.NULL_REGISTRY))
        alerts_on = on.ingest_many(events) + on.finish_stream(end)
        alerts_off = off.ingest_many(events) + off.finish_stream(end)

        assert _canon(alerts_on) == _canon(alerts_off)
        assert on.drops.summary() == off.drops.summary()
        # And the off side recorded nothing at all.
        assert off.metrics.snapshot()["metrics"] == {}


class TestStreamingMetrics:
    @pytest.fixture
    def replayed(self, registry, cyclic_trace):
        detector = _fit(registry, cyclic_trace, telemetry.MetricsRegistry())
        runtime = _runtime(detector)
        events = _adversarial(list(cyclic_trace.slice(3.0 * HOUR, 4.0 * HOUR)))
        runtime.ingest_many(events)
        runtime.finish_stream(cyclic_trace.end)
        return runtime

    def test_core_families_are_populated(self, replayed):
        snap = replayed.metrics.snapshot()["metrics"]
        windows = snap["dice_windows_total"]["series"][0]["value"]
        assert windows == 60  # one hour of 60 s windows
        hist = snap["dice_stage_seconds"]["series"]
        by_stage = {row["labels"]["stage"]: row["count"] for row in hist}
        assert by_stage["correlation"] == 60
        assert by_stage["transition"] == 60

    def test_drop_reasons_are_preseeded(self, replayed):
        rows = replayed.metrics.snapshot()["metrics"]["dice_ingest_dropped_total"]
        reasons = {row["labels"]["reason"]: row["value"] for row in rows["series"]}
        # Every reason exports (zeros included) and totals match the log.
        assert reasons["non_finite_value"] >= 1
        assert sum(reasons.values()) == replayed.drops.total
        assert set(replayed.drops.summary()) <= set(reasons)

    def test_supervisor_gauges_cover_every_state(self, replayed):
        rows = replayed.metrics.snapshot()["metrics"]["dice_supervisor_devices"]
        states = {row["labels"]["state"] for row in rows["series"]}
        assert states == {s.value for s in DeviceStatus}

    def test_health_surface(self, replayed):
        health = replayed.health()
        json.dumps(health)  # must be JSON-serializable as-is
        assert set(health["devices"]) == {
            "motion_kitchen", "motion_bedroom", "temp_kitchen"
        }
        assert sum(health["supervisor_states"].values()) == 3
        assert health["watermark"] is not None
        assert health["reorder_pending"] == 0
        assert health["drops"]["total"] == replayed.drops.total
        assert health["reorder_capacity"] == 4096

    def test_health_before_any_event(self, registry, cyclic_trace):
        runtime = _runtime(_fit(registry, cyclic_trace, telemetry.MetricsRegistry()))
        health = runtime.health()
        assert health["watermark"] is None
        assert health["watermark_lag_seconds"] == 0.0
        assert health["alerts"] == {}


class TestSupervisorRecords:
    @pytest.fixture
    def captured(self):
        stream = io.StringIO()
        previous = telemetry.configure(
            level="debug", format="human", stream=stream, timestamps=False
        )
        try:
            yield stream
        finally:
            telemetry.configure(
                level=previous.level,
                format=previous.format,
                stream=previous.stream,
                timestamps=previous.timestamps,
            )

    def test_quarantine_logs_and_counts(self, registry, captured):
        reg = telemetry.MetricsRegistry()
        sup = DeviceSupervisor(registry, POLICY, metrics=reg)
        sup.check_silence(3000.0)  # quarantines every watched sensor
        out = captured.getvalue()
        assert (
            "WARNING repro.streaming.supervisor device_quarantined "
            "device=motion_kitchen previous=healthy reason=silence" in out
        )
        rows = reg.snapshot()["metrics"][TRANSITIONS_TOTAL]["series"]
        edges = {(r["labels"]["to"], r["labels"]["reason"]): r["value"] for r in rows}
        assert edges[("quarantined", "silence")] == 3

    def test_recovery_logs_at_info(self, registry, captured):
        sup = DeviceSupervisor(registry, POLICY, metrics=telemetry.MetricsRegistry())
        sup.check_silence(3000.0)
        sup.observe(Event(3100.0, "motion_kitchen", 1.0))
        assert "INFO repro.streaming.supervisor device_recovered" in (
            captured.getvalue()
        )


class TestCheckpointedCounters:
    def _replayed_runtime(self, registry, cyclic_trace):
        detector = _fit(registry, cyclic_trace, telemetry.MetricsRegistry())
        runtime = _runtime(detector)
        runtime.ingest_many(list(cyclic_trace.slice(3.0 * HOUR, 4.0 * HOUR)))
        runtime.finish_stream(cyclic_trace.end)
        return runtime

    def test_v2_restores_monotonic_counters(self, registry, cyclic_trace):
        runtime = self._replayed_runtime(registry, cyclic_trace)
        windows = runtime.metrics.snapshot()["metrics"]["dice_windows_total"]
        state = json.loads(json.dumps(runtime.checkpoint()))
        assert state["version"] == CHECKPOINT_VERSION
        assert "telemetry" in state
        # Counters only: gauges/histograms are process-local.
        kinds = {e["type"] for e in state["telemetry"]["metrics"].values()}
        assert kinds == {"counter"}

        fresh = _fit(registry, cyclic_trace, telemetry.MetricsRegistry())
        resumed = restore_runtime(fresh, state)
        restored = resumed.metrics.snapshot()["metrics"]["dice_windows_total"]
        assert restored["series"] == windows["series"]

    def test_v1_snapshot_still_loads(self, registry, cyclic_trace):
        runtime = self._replayed_runtime(registry, cyclic_trace)
        state = json.loads(json.dumps(runtime.checkpoint()))
        state["version"] = 1
        del state["telemetry"]

        fresh = _fit(registry, cyclic_trace, telemetry.MetricsRegistry())
        resumed = restore_runtime(fresh, state)
        # Runtime state restored; counters simply restart from zero.
        assert resumed.state_dict() == runtime.state_dict()
        snap = resumed.metrics.snapshot()["metrics"]
        assert snap["dice_windows_total"]["series"][0]["value"] == 0

    def test_disabled_metrics_checkpoint_has_no_telemetry(
        self, registry, cyclic_trace
    ):
        detector = _fit(registry, cyclic_trace, telemetry.NULL_REGISTRY)
        runtime = _runtime(detector)
        assert "telemetry" not in runtime.checkpoint()
