"""Structured logging: formats, level threshold, global configuration."""

import io
import json

import pytest

from repro.telemetry import LogConfig, configure, current_config, get_logger


@pytest.fixture
def capture():
    """Route records into a StringIO and restore the policy afterwards."""
    stream = io.StringIO()
    previous = configure(
        level="debug", format="human", stream=stream, timestamps=False
    )
    try:
        yield stream
    finally:
        configure(
            level=previous.level,
            format=previous.format,
            stream=previous.stream,
            timestamps=previous.timestamps,
        )


class TestHumanFormat:
    def test_record_layout(self, capture):
        get_logger("repro.test").warning("device_quarantined", device="fridge", n=3)
        assert capture.getvalue() == (
            "WARNING repro.test device_quarantined device=fridge n=3\n"
        )

    def test_floats_render_compactly(self, capture):
        get_logger("repro.test").info("tick", lag=0.25)
        assert "lag=0.25\n" in capture.getvalue()


class TestJsonFormat:
    def test_one_object_per_line(self, capture):
        configure(format="json")
        log = get_logger("repro.test")
        log.info("alert", kind="detection", time=5.0)
        log.error("bad_snapshot", path="x.json")
        lines = capture.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "level": "info",
            "logger": "repro.test",
            "event": "alert",
            "kind": "detection",
            "time": 5.0,
        }
        assert json.loads(lines[1])["level"] == "error"

    def test_timestamps_when_enabled(self, capture):
        configure(format="json", timestamps=True)
        get_logger("repro.test").info("tick")
        assert "ts" in json.loads(capture.getvalue())


class TestLevels:
    def test_below_threshold_is_dropped(self, capture):
        configure(level="warning")
        log = get_logger("repro.test")
        log.debug("hidden")
        log.info("hidden_too")
        log.warning("visible")
        assert "hidden" not in capture.getvalue()
        assert "visible" in capture.getvalue()

    def test_is_enabled(self, capture):
        configure(level="warning")
        log = get_logger("repro.test")
        assert not log.is_enabled("info")
        assert log.is_enabled("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(level="loud")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(format="xml")


class TestConfigure:
    def test_returns_previous_config(self, capture):
        before = current_config()
        previous = configure(level="error")
        assert previous == before
        assert current_config().level == "error"

    def test_default_policy_is_quiet_warning_to_stderr(self):
        default = LogConfig()
        assert default.level == "warning"
        assert default.stream is None  # late-bound sys.stderr

    def test_get_logger_is_cached(self):
        assert get_logger("repro.same") is get_logger("repro.same")


class TestThrottled:
    """The hot-path rate limiter guarding flood-prone warnings."""

    def _clock(self, times):
        it = iter(times)
        return lambda: next(it)

    def test_first_emission_passes_repeats_suppressed(self, capture):
        log = get_logger("repro.throttle.first")
        clock = self._clock([0.0, 1.0, 2.0])
        assert log.throttled("warning", "force_release", 5.0, clock=clock, n=1)
        assert not log.throttled("warning", "force_release", 5.0, clock=clock, n=2)
        assert not log.throttled("warning", "force_release", 5.0, clock=clock, n=3)
        lines = capture.getvalue().splitlines()
        assert len(lines) == 1
        assert "n=1" in lines[0]

    def test_next_window_reports_suppressed_count(self, capture):
        log = get_logger("repro.throttle.count")
        clock = self._clock([0.0, 1.0, 2.0, 6.0, 12.0])
        log.throttled("warning", "drop", 5.0, clock=clock)
        log.throttled("warning", "drop", 5.0, clock=clock)
        log.throttled("warning", "drop", 5.0, clock=clock)
        assert log.throttled("warning", "drop", 5.0, clock=clock)
        lines = capture.getvalue().splitlines()
        assert "suppressed=2" in lines[1]
        # A quiet window carries no stale suppressed field.
        assert log.throttled("warning", "drop", 5.0, clock=clock)
        assert "suppressed" not in capture.getvalue().splitlines()[2]

    def test_throttle_state_is_per_event(self, capture):
        log = get_logger("repro.throttle.events")
        clock = self._clock([0.0, 0.0])
        assert log.throttled("warning", "one", 5.0, clock=clock)
        assert log.throttled("warning", "two", 5.0, clock=clock)
        assert len(capture.getvalue().splitlines()) == 2

    def test_nonpositive_window_always_emits(self, capture):
        log = get_logger("repro.throttle.off")
        assert log.throttled("warning", "burst", 0.0)
        assert log.throttled("warning", "burst", 0.0)
        assert len(capture.getvalue().splitlines()) == 2

    def test_below_threshold_still_advances_the_window(self, capture):
        configure(level="warning")
        log = get_logger("repro.throttle.level")
        clock = self._clock([0.0, 1.0])
        # Emitted-as-suppressed for free: the throttle opens its window
        # even though the record itself is dropped by the level filter...
        assert log.throttled("debug", "quiet", 5.0, clock=clock)
        # ...so an immediate repeat is throttled, not burst.
        assert not log.throttled("debug", "quiet", 5.0, clock=clock)
        assert capture.getvalue() == ""

    def test_changed_window_resets_state(self, capture):
        log = get_logger("repro.throttle.window")
        clock = self._clock([0.0, 1.0])
        assert log.throttled("warning", "tick", 5.0, clock=clock)
        # A different per_seconds is a new policy: state starts fresh.
        assert log.throttled("warning", "tick", 2.0, clock=clock)
        assert len(capture.getvalue().splitlines()) == 2
