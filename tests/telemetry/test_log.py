"""Structured logging: formats, level threshold, global configuration."""

import io
import json

import pytest

from repro.telemetry import LogConfig, configure, current_config, get_logger


@pytest.fixture
def capture():
    """Route records into a StringIO and restore the policy afterwards."""
    stream = io.StringIO()
    previous = configure(
        level="debug", format="human", stream=stream, timestamps=False
    )
    try:
        yield stream
    finally:
        configure(
            level=previous.level,
            format=previous.format,
            stream=previous.stream,
            timestamps=previous.timestamps,
        )


class TestHumanFormat:
    def test_record_layout(self, capture):
        get_logger("repro.test").warning("device_quarantined", device="fridge", n=3)
        assert capture.getvalue() == (
            "WARNING repro.test device_quarantined device=fridge n=3\n"
        )

    def test_floats_render_compactly(self, capture):
        get_logger("repro.test").info("tick", lag=0.25)
        assert "lag=0.25\n" in capture.getvalue()


class TestJsonFormat:
    def test_one_object_per_line(self, capture):
        configure(format="json")
        log = get_logger("repro.test")
        log.info("alert", kind="detection", time=5.0)
        log.error("bad_snapshot", path="x.json")
        lines = capture.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "level": "info",
            "logger": "repro.test",
            "event": "alert",
            "kind": "detection",
            "time": 5.0,
        }
        assert json.loads(lines[1])["level"] == "error"

    def test_timestamps_when_enabled(self, capture):
        configure(format="json", timestamps=True)
        get_logger("repro.test").info("tick")
        assert "ts" in json.loads(capture.getvalue())


class TestLevels:
    def test_below_threshold_is_dropped(self, capture):
        configure(level="warning")
        log = get_logger("repro.test")
        log.debug("hidden")
        log.info("hidden_too")
        log.warning("visible")
        assert "hidden" not in capture.getvalue()
        assert "visible" in capture.getvalue()

    def test_is_enabled(self, capture):
        configure(level="warning")
        log = get_logger("repro.test")
        assert not log.is_enabled("info")
        assert log.is_enabled("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(level="loud")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(format="xml")


class TestConfigure:
    def test_returns_previous_config(self, capture):
        before = current_config()
        previous = configure(level="error")
        assert previous == before
        assert current_config().level == "error"

    def test_default_policy_is_quiet_warning_to_stderr(self):
        default = LogConfig()
        assert default.level == "warning"
        assert default.stream is None  # late-bound sys.stderr

    def test_get_logger_is_cached(self):
        assert get_logger("repro.same") is get_logger("repro.same")
