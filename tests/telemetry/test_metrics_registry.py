"""MetricsRegistry: families, series, snapshots, merging, concurrency."""

import pickle
import threading

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    merge_snapshots,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestFamilies:
    def test_counter_inc_and_get(self, reg):
        c = reg.counter("events_total", "events seen")
        c.inc()
        c.inc(2.5)
        assert c.get() == 3.5

    def test_labelled_series_are_independent(self, reg):
        c = reg.counter("drops_total", labelnames=("reason",))
        c.labels(reason="late").inc()
        c.labels(reason="late").inc()
        c.labels(reason="dup").inc(5)
        assert c.labels(reason="late").get() == 2
        assert c.labels(reason="dup").get() == 5

    def test_labels_returns_cached_series(self, reg):
        c = reg.counter("x_total", labelnames=("k",))
        assert c.labels(k="a") is c.labels(k="a")

    def test_wrong_labelnames_rejected(self, reg):
        c = reg.counter("x_total", labelnames=("k",))
        with pytest.raises(ValueError):
            c.labels(nope="a")

    def test_gauge_set_and_dec(self, reg):
        g = reg.gauge("depth")
        g.set(7)
        g.dec(2)
        assert g.get() == 5

    def test_histogram_bucket_placement(self, reg):
        h = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        h.observe(0.005)  # -> first bucket
        h.observe(0.5)    # -> third bucket
        h.observe(50.0)   # -> overflow
        row = reg.snapshot()["metrics"]["lat_seconds"]["series"][0]
        assert row["bucket_counts"] == [1, 0, 1, 1]
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(50.505)

    def test_histogram_needs_buckets(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=())

    def test_get_or_create_shares_family(self, reg):
        assert reg.counter("shared_total") is reg.counter("shared_total")

    def test_kind_conflict_rejected(self, reg):
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_labelnames_conflict_rejected(self, reg):
        reg.counter("thing", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("thing", labelnames=("b",))

    def test_invalid_name_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("1bad")
        with pytest.raises(ValueError):
            reg.counter("has space")


class TestSnapshot:
    def test_schema_and_sorted_names(self, reg):
        reg.counter("z_total").inc()
        reg.counter("a_total").inc()
        snap = reg.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert list(snap["metrics"]) == ["a_total", "z_total"]

    def test_labelless_family_exports_before_first_update(self, reg):
        reg.counter("quiet_total")
        snap = reg.snapshot()
        assert snap["metrics"]["quiet_total"]["series"] == [
            {"labels": {}, "value": 0.0}
        ]

    def test_collectors_run_at_snapshot(self, reg):
        g = reg.gauge("depth")
        reg.register_collector("src", lambda: g.set(42))
        assert reg.snapshot()["metrics"]["depth"]["series"][0]["value"] == 42

    def test_collector_key_replaces(self, reg):
        g = reg.gauge("depth")
        reg.register_collector("src", lambda: g.set(1))
        reg.register_collector("src", lambda: g.set(2))
        assert reg.snapshot()["metrics"]["depth"]["series"][0]["value"] == 2

    def test_counters_snapshot_and_restore(self, reg):
        reg.counter("n_total", labelnames=("k",)).labels(k="a").inc(9)
        reg.gauge("depth").set(4)
        partial = reg.counters_snapshot()
        assert list(partial["metrics"]) == ["n_total"]

        fresh = MetricsRegistry()
        fresh.restore_counters(partial)
        assert fresh.counter("n_total", labelnames=("k",)).labels(k="a").get() == 9


class TestConcurrency:
    def test_threaded_increments_are_exact(self, reg):
        c = reg.counter("hits_total", labelnames=("who",))
        threads, per_thread = 8, 5000

        def work(i):
            series = c.labels(who=f"t{i % 2}")
            for _ in range(per_thread):
                series.inc()

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = sum(
            row["value"]
            for row in reg.snapshot()["metrics"]["hits_total"]["series"]
        )
        assert total == threads * per_thread

    def test_threaded_observations_are_exact(self, reg):
        h = reg.histogram("lat_seconds", buckets=(0.5,))
        threads, per_thread = 4, 2000

        def work():
            for i in range(per_thread):
                h.observe(i % 2)  # alternate below/above the bound

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        row = reg.snapshot()["metrics"]["lat_seconds"]["series"][0]
        assert row["count"] == threads * per_thread
        # Half at 0 land in the single finite bucket, half at 1 overflow.
        assert row["bucket_counts"] == [threads * per_thread // 2] * 2


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        c = NULL_REGISTRY.counter("x_total", labelnames=("k",))
        c.inc()
        c.labels(k="a").inc()
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1.0)
        NULL_REGISTRY.register_collector("k", lambda: 1 / 0)
        snap = NULL_REGISTRY.snapshot()
        assert snap["metrics"] == {}
        NULL_REGISTRY.restore_counters({"metrics": {}})


class TestPickling:
    def test_round_trip_preserves_values(self, reg):
        reg.counter("n_total", labelnames=("k",)).labels(k="a").inc(3)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        reg.register_collector("dead", lambda: None)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("n_total", labelnames=("k",)).labels(k="a").get() == 3
        # Collectors are process-local and must not survive the trip.
        assert clone._collectors == {}
        # The rebuilt lock still guards updates.
        clone.counter("n_total", labelnames=("k",)).labels(k="a").inc()
        assert clone.snapshot()["metrics"]["h_seconds"]["series"][0]["count"] == 1


class TestMergeSnapshots:
    def _snap(self, build):
        reg = MetricsRegistry()
        build(reg)
        return reg.snapshot()

    def test_counters_add_and_gauges_take_other(self):
        a = self._snap(
            lambda r: (r.counter("n_total").inc(2), r.gauge("depth").set(1))
        )
        b = self._snap(
            lambda r: (r.counter("n_total").inc(3), r.gauge("depth").set(9))
        )
        merged = merge_snapshots(a, b)
        assert merged["metrics"]["n_total"]["series"][0]["value"] == 5
        assert merged["metrics"]["depth"]["series"][0]["value"] == 9

    def test_histograms_sum_per_bucket(self):
        def build(r):
            r.histogram("h", buckets=(1.0,)).observe(0.5)

        merged = merge_snapshots(self._snap(build), self._snap(build))
        row = merged["metrics"]["h"]["series"][0]
        assert row["bucket_counts"] == [2, 0]
        assert row["count"] == 2
        assert row["sum"] == 1.0

    def test_one_sided_families_survive(self):
        a = self._snap(lambda r: r.counter("only_a_total").inc())
        b = self._snap(lambda r: r.counter("only_b_total").inc())
        merged = merge_snapshots(a, b)
        assert set(merged["metrics"]) == {"only_a_total", "only_b_total"}

    def test_disjoint_label_sets_union(self):
        a = self._snap(
            lambda r: r.counter("n_total", labelnames=("k",)).labels(k="x").inc()
        )
        b = self._snap(
            lambda r: r.counter("n_total", labelnames=("k",)).labels(k="y").inc(4)
        )
        rows = merge_snapshots(a, b)["metrics"]["n_total"]["series"]
        assert {tuple(r["labels"].items()): r["value"] for r in rows} == {
            (("k", "x"),): 1,
            (("k", "y"),): 4,
        }

    def test_kind_mismatch_rejected(self):
        a = self._snap(lambda r: r.counter("thing").inc())
        b = self._snap(lambda r: r.gauge("thing").set(1))
        with pytest.raises(ValueError):
            merge_snapshots(a, b)

    def test_bucket_mismatch_rejected(self):
        a = self._snap(lambda r: r.histogram("h", buckets=(1.0,)).observe(0.5))
        b = self._snap(lambda r: r.histogram("h", buckets=(2.0,)).observe(0.5))
        with pytest.raises(ValueError):
            merge_snapshots(a, b)
