"""Prometheus text exposition: golden rendering + validator rejections."""

from pathlib import Path

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.prometheus import to_prometheus, validate_prometheus_text

GOLDEN = Path(__file__).with_name("golden_metrics.prom")


def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    drops = reg.counter(
        "dice_ingest_dropped_total", "Events dropped by the ingest guard",
        labelnames=("reason",),
    )
    drops.labels(reason="stale_late").inc(3)
    drops.labels(reason="non_finite_value").inc()
    reg.gauge("dice_reorder_pending", "Events waiting in the reorder buffer").set(2)
    hist = reg.histogram(
        "dice_stage_seconds", "Per-window stage cost",
        labelnames=("stage",), buckets=(0.001, 0.01, 0.1),
    )
    hist.labels(stage="correlation").observe(0.0005)
    hist.labels(stage="correlation").observe(0.02)
    hist.labels(stage="transition").observe(0.5)
    reg.counter("dice_windows_total", "Windows processed").inc(5)
    return reg


class TestRendering:
    def test_matches_golden_file(self):
        # The golden file pins the exposition byte-for-byte: HELP/TYPE
        # headers, sorted label values, cumulative buckets, +Inf bucket,
        # _sum/_count.  Regenerate deliberately if the format changes.
        assert to_prometheus(_golden_registry().snapshot()) == GOLDEN.read_text()

    def test_golden_text_validates(self):
        assert validate_prometheus_text(GOLDEN.read_text()) == 16

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({"metrics": {}}) == ""
        assert validate_prometheus_text("") == 0

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("k",)).labels(k='a"b\\c\nd').inc()
        text = to_prometheus(reg.snapshot())
        assert '{k="a\\"b\\\\c\\nd"}' in text
        assert validate_prometheus_text(text) == 1

    def test_special_float_values(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("inf"))
        text = to_prometheus(reg.snapshot())
        assert "g +Inf" in text
        assert validate_prometheus_text(text) == 1


class TestValidatorRejections:
    def _reject(self, text, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_prometheus_text(text)

    def test_malformed_comment(self):
        self._reject("# NOPE foo bar\n", "malformed comment")

    def test_invalid_type(self):
        self._reject("# TYPE foo flavour\n", "invalid TYPE")

    def test_sample_without_type_header(self):
        self._reject("orphan_total 1\n", "no TYPE header")

    def test_unparsable_value(self):
        self._reject("# TYPE x counter\nx banana\n", "unparsable value")

    def test_malformed_label(self):
        self._reject('# TYPE x counter\nx{k=unquoted} 1\n', "malformed")

    def test_unterminated_label_value(self):
        self._reject('# TYPE x counter\nx{k="open} 1\n', "unterminated|malformed")

    def test_bucket_without_le(self):
        self._reject(
            "# TYPE h histogram\nh_bucket 1\n", "bucket without le"
        )

    def test_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
        )
        self._reject(text, "not cumulative")

    def test_valid_text_counts_samples(self):
        text = (
            "# HELP ok_total fine\n"
            "# TYPE ok_total counter\n"
            'ok_total{k="v"} 1\n'
            "ok_total 2\n"
        )
        assert validate_prometheus_text(text) == 2


class TestHeaderOrdering:
    """HELP/TYPE discipline: one each per family, HELP first, both before
    the family's first sample."""

    def _reject(self, text, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_prometheus_text(text)

    def test_duplicate_type_rejected(self):
        self._reject(
            "# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"
        )

    def test_duplicate_help_rejected(self):
        self._reject(
            "# HELP x one\n# HELP x two\n# TYPE x counter\nx 1\n",
            "duplicate HELP",
        )

    def test_help_after_type_rejected(self):
        self._reject(
            "# TYPE x counter\n# HELP x late\nx 1\n", "HELP .* after its TYPE"
        )

    def test_header_after_samples_rejected(self):
        self._reject(
            "# TYPE x counter\nx 1\n# HELP x late\n", "after its samples"
        )
        self._reject(
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "# TYPE h histogram\n",
            "after its samples",
        )

    def test_help_without_samples_is_fine(self):
        # HELP-only families (no TYPE, no samples) are legal exposition.
        assert validate_prometheus_text("# HELP idle_total described\n") == 0

    def test_histogram_suffixes_count_as_family_samples(self):
        self._reject(
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
            "# HELP h late\n",
            "after its samples",
        )
