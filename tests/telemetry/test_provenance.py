"""Provenance recorder: trace ids, ring bounds, state round trip, rendering."""

import json

import pytest

from repro.core.checks import TransitionCase
from repro.streaming import Alert
from repro.telemetry.provenance import (
    DEFAULT_CAPACITY,
    NULL_PROVENANCE,
    PROVENANCE_SCHEMA,
    ProvenanceRecorder,
    alert_body,
    canonical_record_bytes,
    render_explanation,
    trace_id,
)


def _alert(time=10.0, kind="detection", **kw):
    return Alert(kind, time, check="correlation", **kw)


class TestTraceId:
    def test_id_is_stable_over_key_order(self):
        body = alert_body("h", 1, _alert())
        shuffled = dict(reversed(list(body.items())))
        assert trace_id(body) == trace_id(shuffled)

    def test_id_depends_on_home_seq_and_content(self):
        a = _alert()
        base = trace_id(alert_body("h", 1, a))
        assert trace_id(alert_body("g", 1, a)) != base
        assert trace_id(alert_body("h", 2, a)) != base
        assert trace_id(alert_body("h", 1, _alert(time=11.0))) != base

    def test_id_matches_outbox_record_id(self):
        # The whole point of the shared scheme: ids read off a delivered
        # alerts file select the matching evidence record verbatim.
        from repro.durability import alert_record

        alert = _alert(
            kind="identification",
            cases=(TransitionCase.G2G,),
            devices=frozenset({"fridge"}),
        )
        record = alert_record("houseA", 7, alert)
        assert record["id"] == trace_id(alert_body("houseA", 7, alert))

    def test_canonical_bytes_are_compact_and_sorted(self):
        payload = json.loads(
            canonical_record_bytes({"b": 1, "a": [2.5]}).decode("utf-8")
        )
        assert payload == {"a": [2.5], "b": 1}
        assert canonical_record_bytes({"b": 1, "a": [2.5]}) == b'{"a":[2.5],"b":1}'


class TestRecorder:
    def test_record_seals_schema_id_and_seq(self):
        rec = ProvenanceRecorder(home_id="houseA")
        record = rec.record(_alert(), windows=[{"window": 3}], latency=2.5)
        assert record["schema"] == PROVENANCE_SCHEMA
        assert record["alert"]["seq"] == 1
        assert record["alert"]["home"] == "houseA"
        assert record["detection_latency_seconds"] == 2.5
        assert record["id"] == trace_id(record["alert"])
        assert rec.records() == [record]
        assert rec.last() is record

    def test_negative_latency_clamps_to_zero(self):
        rec = ProvenanceRecorder()
        assert rec.record(_alert(), windows=[], latency=-1.0)[
            "detection_latency_seconds"
        ] == 0.0

    def test_ring_is_bounded(self):
        rec = ProvenanceRecorder(capacity=3)
        for i in range(5):
            rec.record(_alert(time=float(i)), windows=[])
        kept = rec.records()
        assert len(kept) == 3
        assert [r["alert"]["seq"] for r in kept] == [3, 4, 5]
        assert rec.seq == 5  # seq keeps counting past evictions

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProvenanceRecorder(capacity=0)

    def test_find_by_prefix_returns_newest_match(self):
        rec = ProvenanceRecorder()
        first = rec.record(_alert(time=1.0), windows=[])
        second = rec.record(_alert(time=2.0), windows=[])
        assert rec.find(second["id"][:8]) == second
        assert rec.find(first["id"]) == first
        assert rec.find("nope") is None

    def test_drain_unjournaled_clears_the_queue(self):
        rec = ProvenanceRecorder()
        a = rec.record(_alert(time=1.0), windows=[])
        assert rec.drain_unjournaled() == [a]
        assert rec.drain_unjournaled() == []
        b = rec.record(_alert(time=2.0), windows=[])
        assert rec.drain_unjournaled() == [b]

    def test_state_round_trip_is_exact(self):
        rec = ProvenanceRecorder(home_id="h", capacity=8)
        rec.record(_alert(time=1.0), windows=[{"window": 1}], context={"k": 2})
        rec.chain = [{"window": 2}]
        state = json.loads(json.dumps(rec.state_dict()))  # via JSON, as a checkpoint
        restored = ProvenanceRecorder(home_id="h", capacity=8)
        restored.load_state(state)
        assert restored.seq == rec.seq
        assert restored.records() == rec.records()
        assert restored.chain == rec.chain
        # Restored records are already archived: nothing to re-journal.
        assert restored.drain_unjournaled() == []

    def test_load_state_none_resets(self):
        rec = ProvenanceRecorder()
        rec.record(_alert(), windows=[])
        rec.chain = [{"window": 1}]
        rec.load_state(None)  # a pre-provenance (v1-v3) checkpoint
        assert rec.seq == 0
        assert rec.records() == []
        assert rec.chain == []

    def test_default_capacity(self):
        assert ProvenanceRecorder().capacity == DEFAULT_CAPACITY


class TestNullProvenance:
    def test_every_operation_is_a_noop(self):
        assert NULL_PROVENANCE.enabled is False
        assert NULL_PROVENANCE.record(_alert(), windows=[], latency=1.0) is None
        assert NULL_PROVENANCE.records() == []
        assert NULL_PROVENANCE.last() is None
        assert NULL_PROVENANCE.find("x") is None
        assert NULL_PROVENANCE.drain_unjournaled() == []
        assert NULL_PROVENANCE.state_dict() is None
        NULL_PROVENANCE.load_state({"seq": 9})  # ignored


class TestRendering:
    def _detection_record(self):
        rec = ProvenanceRecorder(home_id="houseA")
        return rec.record(
            _alert(),
            windows=[
                {
                    "window": 495,
                    "start": 100.0,
                    "end": 160.0,
                    "mask": "1008",
                    "actuators": [],
                    "correlation": {
                        "violation": True,
                        "main_group": None,
                        "candidates": [[5, 1]],
                        "max_distance": 1,
                    },
                    "transitions": [],
                }
            ],
            latency=3.0,
            context={"groups": 10, "max_distance": 1, "quarantined": []},
        )

    def test_detection_narrative(self):
        text = render_explanation(self._detection_record())
        assert "correlation violation" in text
        assert "group 5 at Hamming distance 1" in text
        assert "mask 0x1008" in text
        assert "detection latency: 3.0 s" in text
        assert "10 trained groups" in text

    def test_transition_narrative(self):
        rec = ProvenanceRecorder()
        record = rec.record(
            Alert("identification", 20.0, check="transition",
                  devices=frozenset({"fridge"})),
            windows=[
                {
                    "window": 1,
                    "start": 0.0,
                    "end": 60.0,
                    "mask": "3",
                    "actuators": ["hue"],
                    "correlation": {
                        "violation": False,
                        "main_group": 2,
                        "candidates": [],
                        "max_distance": 1,
                    },
                    "transitions": [
                        {
                            "case": "g2g",
                            "prev_group": 1,
                            "cur_group": 2,
                            "probability": 0.0,
                            "count": 0,
                            "row_total": 14,
                        }
                    ],
                }
            ],
        )
        text = render_explanation(record)
        assert "probable faulty device(s): fridge" in text
        assert "transition violation (g2g)" in text
        assert "group 1 -> group 2" in text
        assert "0/14 observations" in text

    def test_health_narrative(self):
        rec = ProvenanceRecorder()
        record = rec.record(
            Alert("device_silence", 30.0, devices=frozenset({"fridge"})),
            windows=[],
            context={
                "device": "fridge",
                "previous": "degraded",
                "current": "quarantined",
                "reason": "silence",
            },
        )
        text = render_explanation(record)
        assert "device fridge: degraded -> quarantined" in text
        assert "no window evidence" in text
