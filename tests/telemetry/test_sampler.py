"""SnapshotSampler: rates, quantiles, SLO burn, and the top dashboard."""

import pytest

from repro.telemetry.sampler import (
    DEFAULT_SAMPLES,
    DROP_BUDGET_RATIO,
    SnapshotSampler,
    counter_total,
    histogram_quantile,
    label_totals,
    render_dashboard,
)


def _counter(value, labels=None):
    row = {"value": value}
    if labels:
        row["labels"] = labels
    return row


def _snapshot(**families):
    """families: name -> list of series rows, or a ("histogram", ...) tuple."""
    metrics = {}
    for name, spec in families.items():
        if isinstance(spec, tuple):
            bounds, bucket_counts = spec
            metrics[name] = {
                "type": "histogram",
                "buckets": list(bounds),
                "series": [{"bucket_counts": list(bucket_counts)}],
            }
        else:
            metrics[name] = {"type": "counter", "series": spec}
    return {"metrics": metrics}


class TestSnapshotFunctions:
    def test_counter_total_sums_matching_series(self):
        snap = _snapshot(
            dice_alerts_total=[
                _counter(3.0, {"kind": "detection"}),
                _counter(2.0, {"kind": "identification"}),
            ]
        )
        assert counter_total(snap, "dice_alerts_total") == 5.0
        assert counter_total(
            snap, "dice_alerts_total", {"kind": "detection"}
        ) == 3.0
        assert counter_total(snap, "missing_family") == 0.0

    def test_label_totals_groups_by_label_value(self):
        snap = _snapshot(
            dice_fleet_events_total=[
                _counter(10.0, {"shard": "0"}),
                _counter(20.0, {"shard": "1"}),
                _counter(5.0),  # unlabeled rows are skipped
            ]
        )
        assert label_totals(snap, "dice_fleet_events_total", "shard") == {
            "0": 10.0,
            "1": 20.0,
        }

    def test_histogram_quantile_interpolates_within_bucket(self):
        # 10 observations spread over buckets [0,1] and (1,2]: the median
        # ranks 5th of 8 in the first bucket -> 1.0 * 5/8.
        snap = _snapshot(lat=((1.0, 2.0), (8, 2, 0)))
        assert histogram_quantile(snap, "lat", 0.5) == pytest.approx(0.625)
        # p95 ranks 9.5, i.e. 1.5 of the 2 in (1,2].
        assert histogram_quantile(snap, "lat", 0.95) == pytest.approx(1.75)

    def test_histogram_quantile_overflow_reports_last_bound(self):
        snap = _snapshot(lat=((1.0, 2.0), (0, 0, 4)))
        assert histogram_quantile(snap, "lat", 0.5) == 2.0

    def test_histogram_quantile_empty_or_missing_is_none(self):
        assert histogram_quantile(_snapshot(), "lat", 0.5) is None
        snap = _snapshot(lat=((1.0,), (0, 0)))
        assert histogram_quantile(snap, "lat", 0.5) is None


class TestSampler:
    def test_capacity_needs_a_pair(self):
        with pytest.raises(ValueError):
            SnapshotSampler(capacity=1)
        assert SnapshotSampler().capacity == DEFAULT_SAMPLES

    def test_counter_rate_uses_newest_pair(self):
        sampler = SnapshotSampler()
        assert sampler.counter_rate("dice_windows_total") is None
        sampler.add(0.0, _snapshot(dice_windows_total=[_counter(100.0)]))
        assert sampler.counter_rate("dice_windows_total") is None
        sampler.add(2.0, _snapshot(dice_windows_total=[_counter(150.0)]))
        assert sampler.counter_rate("dice_windows_total") == pytest.approx(25.0)
        assert sampler.span_seconds == 2.0

    def test_counter_reset_clamps_to_zero(self):
        sampler = SnapshotSampler()
        sampler.add(0.0, _snapshot(dice_windows_total=[_counter(100.0)]))
        sampler.add(1.0, _snapshot(dice_windows_total=[_counter(10.0)]))
        assert sampler.counter_rate("dice_windows_total") == 0.0

    def test_out_of_order_sample_yields_none(self):
        sampler = SnapshotSampler()
        sampler.add(5.0, _snapshot(dice_windows_total=[_counter(1.0)]))
        sampler.add(5.0, _snapshot(dice_windows_total=[_counter(2.0)]))
        assert sampler.counter_rate("dice_windows_total") is None

    def test_ring_is_bounded(self):
        sampler = SnapshotSampler(capacity=2)
        for t in range(5):
            sampler.add(float(t), _snapshot())
        assert len(sampler) == 2
        assert sampler.span_seconds == 1.0

    def test_label_rates_per_shard(self):
        sampler = SnapshotSampler()
        sampler.add(
            0.0,
            _snapshot(
                dice_fleet_events_total=[
                    _counter(0.0, {"shard": "0"}),
                    _counter(0.0, {"shard": "1"}),
                ]
            ),
        )
        sampler.add(
            2.0,
            _snapshot(
                dice_fleet_events_total=[
                    _counter(100.0, {"shard": "0"}),
                    _counter(50.0, {"shard": "1"}),
                ]
            ),
        )
        assert sampler.label_rates("dice_fleet_events_total", "shard") == {
            "0": 50.0,
            "1": 25.0,
        }

    def test_gauge_value_reads_latest(self):
        sampler = SnapshotSampler()
        assert sampler.gauge_value("dice_reorder_pending") == 0.0
        sampler.add(0.0, _snapshot(dice_reorder_pending=[_counter(7.0)]))
        assert sampler.gauge_value("dice_reorder_pending") == 7.0

    def test_quantiles_over_latest_snapshot(self):
        sampler = SnapshotSampler()
        assert sampler.quantiles("lat", (0.5,)) == {0.5: None}
        sampler.add(0.0, _snapshot(lat=((1.0, 2.0), (8, 2, 0))))
        qs = sampler.quantiles("lat", (0.5, 0.95))
        assert qs[0.5] == pytest.approx(0.625)
        assert qs[0.95] == pytest.approx(1.75)

    def test_burn_rate_is_ratio_over_budget(self):
        sampler = SnapshotSampler()
        assert sampler.burn_rate("bad", "total", 0.01) is None
        sampler.add(
            0.0, _snapshot(bad=[_counter(0.0)], total=[_counter(0.0)])
        )
        sampler.add(
            1.0, _snapshot(bad=[_counter(2.0)], total=[_counter(100.0)])
        )
        # 2% observed against a 1% budget: burning twice as fast.
        assert sampler.burn_rate("bad", "total", 0.01) == pytest.approx(2.0)

    def test_burn_rate_idle_interval_is_zero(self):
        sampler = SnapshotSampler()
        sampler.add(0.0, _snapshot(bad=[_counter(0.0)], total=[_counter(5.0)]))
        sampler.add(1.0, _snapshot(bad=[_counter(1.0)], total=[_counter(5.0)]))
        assert sampler.burn_rate("bad", "total", 0.01) == 0.0

    def test_burn_rate_requires_positive_budget(self):
        with pytest.raises(ValueError):
            SnapshotSampler().burn_rate("bad", "total", 0.0)


class TestDashboard:
    def test_first_frame_shows_na_rates(self):
        sampler = SnapshotSampler()
        frame = render_dashboard(sampler)
        assert "0 sample(s)" in frame
        assert "windows:   n/a" in frame
        assert "SLO burn:  n/a" in frame

    def test_fleet_frame_breaks_rates_down_per_shard(self):
        sampler = SnapshotSampler()
        sampler.add(
            0.0,
            _snapshot(
                dice_fleet_events_total=[
                    _counter(0.0, {"shard": "0"}),
                    _counter(0.0, {"shard": "1"}),
                ],
                dice_alerts_total=[_counter(0.0, {"kind": "detection"})],
                dice_ingest_dropped_total=[_counter(0.0, {"reason": "guard"})],
            ),
        )
        sampler.add(
            2.0,
            _snapshot(
                dice_fleet_events_total=[
                    _counter(100.0, {"shard": "0"}),
                    _counter(60.0, {"shard": "1"}),
                ],
                dice_alerts_total=[_counter(1.0, {"kind": "detection"})],
                dice_ingest_dropped_total=[_counter(4.0, {"reason": "guard"})],
                dice_detection_latency_seconds=((1.0, 2.0), (8, 2, 0)),
                dice_reorder_watermark_lag_seconds=[_counter(12.5)],
                dice_reorder_pending=[_counter(3.0)],
            ),
        )
        frame = render_dashboard(sampler)
        assert "events:    80.0/s total" in frame
        assert "shard 0: 50.0/s" in frame
        assert "shard 1: 30.0/s" in frame
        assert "detection: 0.50/s" in frame
        assert "drops:     2.0/s" in frame
        assert "p50: 0.625 s" in frame
        assert "lag 12.5 s" in frame
        assert "pending 3" in frame
        # 4 drops over 160 events = 2.5%, against the 1% budget.
        assert "SLO burn:  2.50x" in frame
        assert f"{DROP_BUDGET_RATIO * 100:g}% drop budget" in frame

    def test_standalone_frame_falls_back_to_window_rate(self):
        sampler = SnapshotSampler()
        sampler.add(0.0, _snapshot(dice_windows_total=[_counter(0.0)]))
        sampler.add(1.0, _snapshot(dice_windows_total=[_counter(30.0)]))
        frame = render_dashboard(sampler)
        assert "windows:   30.0/s" in frame
        assert "events:" not in frame
