"""Tracer: span nesting, timing, histogram reporting, disabled mode."""

import time

from repro.telemetry import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, Tracer
from repro.telemetry.spans import SPAN_HISTOGRAM, _NULL_SPAN


def _finished(tracer):
    return [(s.name, s.parent, s.depth) for s in tracer.finished]


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.trace("window") as outer:
            with tracer.trace("correlation"):
                pass
            with tracer.trace("transition"):
                pass
        assert _finished(tracer) == [
            ("correlation", "window", 1),
            ("transition", "window", 1),
            ("window", None, 0),
        ]
        assert outer.children == 2

    def test_children_finish_before_parents(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.trace("a"):
            with tracer.trace("b"):
                with tracer.trace("c"):
                    pass
        assert [s.name for s in tracer.finished] == ["c", "b", "a"]

    def test_exception_unwinds_cleanly(self):
        tracer = Tracer(MetricsRegistry())
        try:
            with tracer.trace("outer"):
                with tracer.trace("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        # The stack is empty again: the next span is a root.
        with tracer.trace("fresh") as span:
            assert span.depth == 0


class TestTiming:
    def test_duration_covers_the_block(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.trace("sleepy"):
            time.sleep(0.01)
        span = tracer.finished[-1]
        assert span.duration >= 0.01

    def test_durations_land_in_histogram(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        with tracer.trace("stage"):
            pass
        with tracer.trace("stage"):
            pass
        rows = reg.snapshot()["metrics"][SPAN_HISTOGRAM]["series"]
        assert [(r["labels"], r["count"]) for r in rows] == [({"span": "stage"}, 2)]

    def test_ring_is_bounded(self):
        tracer = Tracer(MetricsRegistry(), keep=3)
        for i in range(10):
            with tracer.trace(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["s7", "s8", "s9"]


class TestDisabled:
    def test_null_registry_yields_shared_null_span(self):
        tracer = Tracer(NULL_REGISTRY)
        assert not tracer.enabled
        span = tracer.trace("anything")
        assert span is _NULL_SPAN
        with span:
            pass
        assert len(tracer.finished) == 0

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.trace("x") is _NULL_SPAN
