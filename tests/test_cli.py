"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_datasets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("houseA", "twor", "hh102", "D_houseA", "D_hh102"):
            assert name in out


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        code = main(
            ["generate", "houseA", "--hours", "6", "--seed", "1", "-o", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert (tmp_path / "trace.devices.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_roundtrips_through_io(self, tmp_path):
        out_path = tmp_path / "trace.csv"
        main(["generate", "houseA", "--hours", "6", "--seed", "1", "-o", str(out_path)])
        from repro.datasets import read_trace

        trace = read_trace(str(out_path))
        assert len(trace.registry) == 14


class TestEvaluate:
    def test_prints_metrics(self, capsys):
        code = main(
            ["evaluate", "houseA", "--scale", "0.2", "--pairs", "4", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection:" in out
        assert "identification:" in out
        assert "correlation degree:" in out


class TestStream:
    # Live window 30-40 h lands in daytime, where houseA actually has events.
    ARGS = [
        "stream", "houseA",
        "--hours", "40", "--train-hours", "30", "--seed", "3",
    ]

    def test_clean_stream_prints_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "streamed" in out
        assert "dropped events: 0" in out

    def test_pipe_faults_are_survived_and_counted(self, capsys):
        code = main(
            self.ARGS
            + ["--pipe-faults", "reorder,duplicate,corrupt_value",
               "--pipe-rate", "0.1", "--lateness", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "non_finite_value" in out

    def test_checkpoint_save_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "gateway.json"
        assert main(self.ARGS + ["--save-checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()
        # Diagnostics go through the structured logger on stderr; stdout
        # stays reserved for the stream summary.
        captured = capsys.readouterr()
        assert "checkpoint saved" in captured.err
        assert "checkpoint saved" not in captured.out
        assert main(self.ARGS + ["--resume", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert "resumed from" in captured.err
        assert "streamed" in captured.out

    def test_bad_split_rejected(self, capsys):
        code = main(
            ["stream", "houseA", "--hours", "10", "--train-hours", "20"]
        )
        assert code == 2

    def test_journal_and_alert_delivery(self, tmp_path, capsys):
        import json

        journal = tmp_path / "journal"
        alerts_out = tmp_path / "alerts.jsonl"
        code = main(
            self.ARGS
            + ["--journal-dir", str(journal), "--alerts-out", str(alerts_out)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alerts delivered:" in out
        assert journal.is_dir()
        if alerts_out.exists():  # only created when alerts actually fired
            for line in alerts_out.read_text().splitlines():
                assert "id" in json.loads(line)

    def test_alerts_out_requires_journal_dir(self, tmp_path):
        assert (
            main(self.ARGS + ["--alerts-out", str(tmp_path / "alerts.jsonl")]) == 2
        )

    def test_journal_checkpoint_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "journal"
        ckpt = tmp_path / "gateway.json"
        args = self.ARGS + ["--journal-dir", str(journal)]
        assert main(args + ["--save-checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(args + ["--resume", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert "resumed from checkpoint + journal tail" in captured.err
        assert "streamed" in captured.out

    def test_corrupt_checkpoint_is_one_actionable_line(self, tmp_path, capsys):
        ckpt = tmp_path / "bad.json"
        ckpt.write_text("{torn mid-write")
        journal = tmp_path / "journal"
        code = main(
            self.ARGS
            + ["--journal-dir", str(journal), "--resume", str(ckpt)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "resume_failed" in err
        assert "corrupt checkpoint" in err
        assert str(ckpt) in err

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        import json

        from repro.telemetry import SNAPSHOT_SCHEMA

        out = tmp_path / "metrics.json"
        assert main(self.ARGS + ["--metrics-out", str(out)]) == 0
        assert "wrote metrics snapshot" in capsys.readouterr().out
        snap = json.loads(out.read_text())
        assert snap["schema"] == SNAPSHOT_SCHEMA
        windows = snap["metrics"]["dice_windows_total"]["series"][0]["value"]
        assert windows > 0

    def test_json_log_format(self, tmp_path, capsys):
        import json

        ckpt = tmp_path / "gateway.json"
        code = main(
            ["--log-format", "json"]
            + self.ARGS
            + ["--save-checkpoint", str(ckpt)]
        )
        assert code == 0
        err_lines = capsys.readouterr().err.splitlines()
        records = [json.loads(line) for line in err_lines if line.strip()]
        assert any(r["event"] == "checkpoint_saved" for r in records)


class TestFleet:
    ARGS = [
        "fleet", "--homes", "2",
        "--hours", "28", "--train-hours", "24", "--seed", "5",
    ]

    def test_fleet_prints_summary(self, capsys):
        assert main(self.ARGS + ["--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 homes on 2 shards" in out
        assert "dispatched" in out
        assert "homes per shard:" in out
        assert "unrouted" not in out  # only printed when non-zero

    def test_checkpoint_save_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "fleet-ckpt"
        assert main(self.ARGS + ["--save-checkpoint", str(ckpt)]) == 0
        assert (ckpt / "manifest.json").exists()
        # Resume onto a different shard count: sharding is a scaling knob,
        # not part of the checkpointed state.
        assert main(self.ARGS + ["--shards", "3", "--resume", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "2 homes on 3 shards" in out

    def test_metrics_out_writes_merged_snapshot(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        assert main(self.ARGS + ["--metrics-out", str(out)]) == 0
        snap = json.loads(out.read_text())
        assert "dice_fleet_events_total" in snap["metrics"]

    @pytest.mark.parametrize(
        "argv",
        [
            ["fleet", "--homes", "0"],
            ["fleet", "--homes", "2", "--shards", "0"],
            ["fleet", "--homes", "2", "--shards", "-3"],
            ["fleet", "--homes", "2", "--hours", "10", "--train-hours", "10"],
        ],
    )
    def test_bad_parameters_exit_2(self, argv, capsys):
        assert main(argv) == 2

    def test_resume_garbage_exit_2(self, tmp_path):
        assert main(self.ARGS + ["--resume", str(tmp_path / "nope")]) == 2


class TestChaos:
    def test_standalone_smoke(self, tmp_path, capsys):
        code = main(
            [
                "chaos", "--mode", "standalone",
                "--deployments", "1", "--kills", "2", "--seed", "0",
                "--workdir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standalone: 2 trials" in out
        assert "OK" in out
        assert "FAIL" not in out

    def test_fleet_smoke(self, tmp_path, capsys):
        code = main(
            [
                "chaos", "--mode", "fleet",
                "--fleets", "1", "--fleet-kills", "2", "--homes", "2",
                "--seed", "0", "--workdir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 2 trials" in out
        assert "OK" in out

    def test_non_fail_stop_fault_class(self, tmp_path, capsys):
        code = main(
            [
                "chaos", "--mode", "standalone",
                "--deployments", "1", "--kills", "1", "--seed", "0",
                "--fault-class", "stuck_at", "--workdir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_unknown_fault_class_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--fault-class", "gremlins"])
        assert excinfo.value.code == 2


class TestScenarios:
    def test_list_prints_cell_ids(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fault:fail_stop:houseA:single:plain" in out
        assert "drift:seasonal_shift:synthetic:single:refresh" in out

    def test_mini_matrix_writes_valid_report(self, tmp_path, capsys):
        out_path = tmp_path / "scenario-report.json"
        code = main(
            [
                "scenarios", "--seed", "7", "--trials", "1",
                "--cells", "drift:seasonal_shift", "-o", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift seasonal_shift: sustained alerts/h" in out
        from repro.scenarios import validate_report

        with open(out_path, encoding="utf-8") as fh:
            doc = validate_report(json.load(fh))
        assert {row["id"] for row in doc["cells"]} == {
            "drift:seasonal_shift:synthetic:single:plain",
            "drift:seasonal_shift:synthetic:single:refresh",
        }

    def test_bad_cell_filter_exits_2(self):
        assert main(["scenarios", "--cells", "no_such_cell"]) == 2


class TestMetrics:
    def _snapshot(self, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(TestStream.ARGS + ["--metrics-out", str(out)]) == 0
        return out

    def test_table_format(self, tmp_path, capsys):
        path = self._snapshot(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dice_windows_total" in out
        assert "dice_stage_seconds" in out

    def test_prom_format_is_valid_exposition(self, tmp_path, capsys):
        from repro.telemetry.prometheus import validate_prometheus_text

        path = self._snapshot(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path), "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert validate_prometheus_text(text) > 0

    def test_json_format_round_trips(self, tmp_path, capsys):
        import json

        path = self._snapshot(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(path.read_text())

    def test_bad_snapshot_rejected(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        bad.write_text("{not json")
        assert main(["metrics", str(bad)]) == 2
        assert main(["metrics", str(tmp_path / "missing.json")]) == 2


class TestExperiment:
    def test_degree_table(self, capsys):
        code = main(
            [
                "experiment", "degree",
                "--datasets", "houseA",
                "--scale", "0.2",
                "--pairs", "4",
            ]
        )
        assert code == 0
        assert "correlation degree" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestBench:
    def test_quick_bench_writes_valid_document(self, tmp_path, capsys):
        import json

        from repro.bench import BENCH_SCHEMA, validate_document

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--quick",
                "--groups", "40",
                "--windows", "200",
                "--workers", "1", "2",
                "-o", str(out),
            ]
        )
        assert code == 0
        assert "scan:" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert validate_document(doc) is doc
        assert doc["scan"][0]["groups"] == 40
        assert doc["eval"]["aggregates_identical"] is True
        assert [run["workers"] for run in doc["eval"]["runs"]] == [1, 2]
        assert doc["journal"]["alerts_identical"] is True
        assert set(doc["journal"]["overhead_ratio"]) == {
            "never", "interval", "always",
        }
        assert doc["provenance"]["alerts_identical"] is True
        assert doc["provenance"]["events"] > 0
        assert doc["provenance"]["overhead_ratio"] >= 0

        # The validator is what CI gates on: it must reject mutations.
        bad = dict(doc, schema="nope")
        with pytest.raises(ValueError):
            validate_document(bad)
        bad = json.loads(out.read_text())
        bad["eval"]["aggregates_identical"] = False
        with pytest.raises(ValueError):
            validate_document(bad)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
