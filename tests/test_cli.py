"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_datasets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("houseA", "twor", "hh102", "D_houseA", "D_hh102"):
            assert name in out


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        code = main(
            ["generate", "houseA", "--hours", "6", "--seed", "1", "-o", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert (tmp_path / "trace.devices.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_roundtrips_through_io(self, tmp_path):
        out_path = tmp_path / "trace.csv"
        main(["generate", "houseA", "--hours", "6", "--seed", "1", "-o", str(out_path)])
        from repro.datasets import read_trace

        trace = read_trace(str(out_path))
        assert len(trace.registry) == 14


class TestEvaluate:
    def test_prints_metrics(self, capsys):
        code = main(
            ["evaluate", "houseA", "--scale", "0.2", "--pairs", "4", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection:" in out
        assert "identification:" in out
        assert "correlation degree:" in out


class TestExperiment:
    def test_degree_table(self, capsys):
        code = main(
            [
                "experiment", "degree",
                "--datasets", "houseA",
                "--scale", "0.2",
                "--pairs", "4",
            ]
        )
        assert code == 0
        assert "correlation degree" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
