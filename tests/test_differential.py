"""Randomized differential tests: two implementations, one truth.

Two oracle pairs are cross-checked on fixed-seed random inputs
(stdlib ``random`` only, so the suite stays deterministic across
platforms and numpy versions):

* **streaming vs batch** — :class:`~repro.streaming.OnlineDice` replaying
  a live segment event-at-a-time must raise exactly the alerts that
  :meth:`DiceDetector.process` derives from the same segment in one
  vectorised pass: same times, checks, transition cases, device sets and
  convergence flags, in the same order.  Fifty random deployments
  (1-5 binary sensors, optional numeric sensor and actuator, varying
  phase structure and window alignment) are each run through one of five
  live-segment perturbations (identity / drop a device / drop random
  events / duplicate events / corrupt values) so the comparison covers
  healthy and faulty streams alike.

* **packed vs scalar Hamming** — :meth:`PackedBitsets.distances_many`
  (both its XOR-popcount and GEMM bit-plane kernels) must agree with the
  obvious ``(a ^ b).bit_count()`` oracle for every bit width straddling
  the 64-bit word boundaries.
"""

import random

import pytest

from repro.core import DiceDetector
from repro.core.bitset import _GEMM_MIN_ROWS, PackedBitsets
from repro.model import (
    DeviceRegistry,
    Event,
    SensorType,
    Trace,
    actuator,
    binary_sensor,
    numeric_sensor,
)
from repro.streaming import OnlineDice

HOUR = 3600.0
SEED = 20260806
TRIALS = 50
PERTURBATIONS = ["identity", "drop_device", "drop_random", "duplicate", "corrupt"]


# ---------------------------------------------------------------------------
# Random deployment generator
# ---------------------------------------------------------------------------


def _build_registry(k_binary, with_numeric, with_actuator):
    devices = [
        binary_sensor(f"m{i}", SensorType.MOTION, f"room{i % 3}")
        for i in range(k_binary)
    ]
    if with_numeric:
        devices.append(numeric_sensor("temp0", SensorType.TEMPERATURE, "room0"))
    if with_actuator:
        devices.append(actuator("act0", SensorType.BULB, "room0"))
    return DeviceRegistry(devices)


def _build_trace(rng, registry, hours, phase):
    """Phased activity: one device active per phase, at a random cadence."""
    events = []
    horizon = hours * HOUR
    ids = registry.device_ids
    t = 0.0
    while t < horizon:
        active = ids[rng.randrange(len(ids))]
        step = rng.choice([20.0, 30.0, 45.0])
        s = t
        while s < min(t + phase, horizon):
            if active.startswith("temp"):
                events.append(Event(s, active, 20.0 + 5.0 * rng.random()))
            elif active.startswith("act"):
                events.append(Event(s, active, 1.0))
                events.append(Event(min(s + step / 2, horizon), active, 0.0))
            else:
                events.append(Event(s, active, 1.0))
            s += step
        t += phase
    return Trace.from_events(registry, events, start=0.0, end=horizon)


def _perturb(rng, live, kind):
    """Inject a fault into the live segment (or none, for ``identity``)."""
    if kind == "identity":
        return live
    if kind == "drop_device":
        return live.without_device(rng.choice(live.registry.device_ids))
    events = list(live)
    if kind == "drop_random":
        events = [e for e in events if rng.random() > 0.25]
    elif kind == "duplicate":
        events = events + [e for e in events if rng.random() < 0.1]
    elif kind == "corrupt":
        events = [
            Event(e.timestamp, e.device_id, 0.0 if rng.random() < 0.1 else e.value)
            for e in events
        ]
    return Trace.from_events(live.registry, events, start=live.start, end=live.end)


def _alert_views(online, batch):
    """Project streaming alerts and a batch report onto comparable tuples."""
    s_det = [(a.time, a.check, a.cases) for a in online.alerts if a.kind == "detection"]
    b_det = [(r.time, r.check, r.cases) for r in batch.detections]
    s_idn = [
        (a.time, tuple(sorted(a.devices)), a.converged, a.check)
        for a in online.alerts
        if a.kind == "identification"
    ]
    b_idn = [
        (r.time, tuple(sorted(r.devices)), r.converged, r.triggered_by)
        for r in batch.identifications
    ]
    return s_det, b_det, s_idn, b_idn


# ---------------------------------------------------------------------------
# Part A: streaming runtime vs batch detector
# ---------------------------------------------------------------------------


def test_streaming_matches_batch_on_random_traces():
    # One sequential RNG across all trials: each trial's deployment depends
    # on the seed alone, and any failure message names the trial to replay.
    rng = random.Random(SEED)
    total_alerts = 0
    for trial in range(TRIALS):
        # Trial 0 pins the degenerate single-sensor deployment.
        k = 1 if trial == 0 else rng.randrange(1, 6)
        registry = _build_registry(
            k,
            trial != 0 and rng.random() < 0.5,
            trial != 0 and rng.random() < 0.5,
        )
        hours = rng.choice([4.0, 6.0, 8.0])
        phase = rng.choice([300.0, 600.0, 900.0])
        trace = _build_trace(rng, registry, hours, phase)
        # A fractional split leaves the live segment unaligned with the
        # window grid, exercising the trailing-partial-window semantics.
        split = hours * HOUR * rng.uniform(0.6, 0.75)
        detector = DiceDetector(registry).fit(trace.slice(0.0, split))
        live = _perturb(
            rng,
            trace.slice(split, hours * HOUR),
            PERTURBATIONS[trial % len(PERTURBATIONS)],
        )

        batch = detector.process(live)
        online = OnlineDice(detector, start=live.start)
        online.replay(live)

        s_det, b_det, s_idn, b_idn = _alert_views(online, batch)
        assert s_det == b_det, f"trial {trial}: detection streams diverged"
        assert s_idn == b_idn, f"trial {trial}: identification streams diverged"
        total_alerts += len(s_det) + len(s_idn)
    # The corpus must actually exercise the pipeline, not compare silence.
    assert total_alerts > 50


def test_streaming_matches_batch_across_silent_gaps():
    # A live segment that goes completely dark mid-stream: every window in
    # the gap is empty, and both sides must step through the same number of
    # (empty) windows and agree on everything raised around the gap.
    rng = random.Random(SEED + 1)
    registry = _build_registry(3, True, False)
    trace = _build_trace(rng, registry, 6.0, 600.0)
    split = 4.0 * HOUR
    detector = DiceDetector(registry).fit(trace.slice(0.0, split))
    live = trace.slice(split, 6.0 * HOUR)
    gap_start, gap_end = split + 0.4 * HOUR, split + 1.1 * HOUR
    gapped = Trace.from_events(
        registry,
        [e for e in live if not gap_start <= e.timestamp < gap_end],
        start=live.start,
        end=live.end,
    )

    batch = detector.process(gapped)
    online = OnlineDice(detector, start=gapped.start)
    online.replay(gapped)

    s_det, b_det, s_idn, b_idn = _alert_views(online, batch)
    assert s_det == b_det
    assert s_idn == b_idn


# ---------------------------------------------------------------------------
# Part B: packed Hamming kernels vs the scalar oracle
# ---------------------------------------------------------------------------


def _random_masks(rng, num_bits, count):
    masks = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.1:
            masks.append(0)
        elif roll < 0.2:
            masks.append((1 << num_bits) - 1)
        else:
            masks.append(rng.getrandbits(num_bits))
    return masks


@pytest.mark.parametrize("num_bits", [1, 7, 64, 65, 130])
def test_distances_many_matches_scalar_hamming(num_bits):
    # Widths straddle the packing boundaries: sub-word, exactly one word,
    # one word + 1 bit, two words + 2 bits.
    rng = random.Random(SEED + num_bits)
    for n_rows in [1, 5, 40]:
        rows = _random_masks(rng, num_bits, n_rows)
        packed = PackedBitsets(num_bits, rows)
        for n_probes in [1, 3, _GEMM_MIN_ROWS + 16]:
            probes = _random_masks(rng, num_bits, n_probes)
            got = packed.distances_many(probes)
            assert got.shape == (n_probes, n_rows)
            for i, probe in enumerate(probes):
                for j, row in enumerate(rows):
                    assert got[i, j] == bin(probe ^ row).count("1"), (
                        f"bits={num_bits} probe#{i} row#{j}"
                    )
        # Single-probe path shares the oracle.
        probe = rng.getrandbits(num_bits)
        single = packed.distances(probe)
        assert [int(d) for d in single] == [
            bin(probe ^ row).count("1") for row in rows
        ]


def test_distances_many_exercises_both_kernels():
    rng = random.Random(SEED)
    packed = PackedBitsets(130, _random_masks(rng, 130, 8))
    packed.distances_many(_random_masks(rng, 130, 3))
    assert packed.kernel_calls == {"gemm": 0, "xor": 1}
    packed.distances_many(_random_masks(rng, 130, _GEMM_MIN_ROWS))
    assert packed.kernel_calls == {"gemm": 1, "xor": 1}


def test_distances_many_degenerate_shapes():
    packed = PackedBitsets(16, [0xBEEF, 0x0])
    assert packed.distances_many([]).shape == (0, 2)
    empty = PackedBitsets(16)
    assert empty.distances_many([1, 2]).shape == (2, 0)
    # Degenerate calls return early without picking a kernel.
    assert packed.kernel_calls == {"gemm": 0, "xor": 0}
    assert empty.kernel_calls == {"gemm": 0, "xor": 0}
