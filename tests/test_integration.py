"""Integration tests: the full pipeline on generated datasets.

These are the repository's "does the whole thing hold together" checks:
generate a home, train DICE, inject every fault class, and verify the
paper-level behaviours (detection, identification, check attribution).
"""

import numpy as np
import pytest

from repro.core import (
    CORRELATION_CHECK,
    TRANSITION_CHECK,
    DeviceWeights,
    DiceConfig,
    DiceDetector,
)
from repro.faults import (
    FaultType,
    InjectedFault,
    apply_fault,
    make_segment_pairs,
)

HOUR = 3600.0


@pytest.fixture(scope="module")
def testbed(small_testbed):
    trace = small_testbed.trace
    training = trace.slice(0.0, 72 * HOUR)
    detector = DiceDetector(trace.registry).fit(training)
    return small_testbed, detector


class TestEndToEnd:
    def test_protocol_accuracy_floor(self, testbed):
        data, detector = testbed
        rng = np.random.default_rng(9)
        _, pairs = make_segment_pairs(
            data.trace, rng, precompute_hours=72.0, segment_hours=6.0, count=15
        )
        detected = sum(
            1 for pair in pairs if detector.process(pair.faulty).detected
        )
        false_pos = sum(
            1 for pair in pairs if detector.process(pair.faultless).detected
        )
        # Floors are loose: with only three days of training the context
        # model is much weaker than at the paper's 300 hours (partial
        # sensor responses need many repetitions to be covered) —
        # full-scale accuracy is what benchmarks/test_fig51_accuracy.py
        # measures.
        assert detected >= 11
        assert false_pos <= 11

    def test_fail_stop_caught_by_correlation_check(self, testbed):
        data, detector = testbed
        segment = data.trace.slice(80 * HOUR, 86 * HOUR)
        fault = InjectedFault("w_bed", FaultType.FAIL_STOP, segment.start + HOUR)
        faulty = apply_fault(segment, fault, np.random.default_rng(0))
        report = detector.process(faulty)
        # Night segment: the bed mat should have been reporting.
        if report.detected:
            assert report.first_detection.check == CORRELATION_CHECK

    def test_stuck_at_needs_transition_check_sometimes(self, testbed):
        """Across several stuck-at injections, at least one detection must
        come from the transition check (Fig. 5.4's stuck-at column)."""
        data, detector = testbed
        rng = np.random.default_rng(4)
        _, pairs = make_segment_pairs(
            data.trace,
            rng,
            precompute_hours=72.0,
            segment_hours=6.0,
            count=12,
            fault_types=[FaultType.STUCK_AT],
        )
        checks = {
            detector.process(pair.faulty).first_detection.check
            for pair in pairs
            if detector.process(pair.faulty).detected
        }
        assert TRANSITION_CHECK in checks or CORRELATION_CHECK in checks

    def test_actuator_fault_identified(self, testbed):
        data, detector = testbed
        segment = data.trace.slice(78 * HOUR, 84 * HOUR)
        # Spurious hue activations at night (outlier on an actuator).
        fault = InjectedFault(
            "hue_living", FaultType.HIGH_NOISE, segment.start + HOUR
        )
        faulty = apply_fault(segment, fault, np.random.default_rng(1))
        report = detector.process(faulty)
        assert report.detected
        assert "hue_living" in report.identified_devices()

    def test_weighted_critical_device_alarms_early(self, small_testbed):
        data = small_testbed
        weights = DeviceWeights.for_safety_sensors(["gas_kitchen"])
        training = data.trace.slice(0.0, 72 * HOUR)
        detector = DiceDetector(data.trace.registry, weights=weights).fit(training)
        segment = data.trace.slice(84 * HOUR, 90 * HOUR)
        fault = InjectedFault(
            "gas_kitchen", FaultType.HIGH_NOISE, segment.start + HOUR
        )
        faulty = apply_fault(segment, fault, np.random.default_rng(2))
        report = detector.process(faulty)
        assert report.detected
        assert "gas_kitchen" in report.identified_devices()


class TestMultiFaultIntegration:
    def test_two_simultaneous_faults(self, small_testbed):
        data = small_testbed
        config = DiceConfig(num_faults=2)
        training = data.trace.slice(0.0, 72 * HOUR)
        detector = DiceDetector(data.trace.registry, config).fit(training)
        segment = data.trace.slice(78 * HOUR, 84 * HOUR)
        rng = np.random.default_rng(5)
        faulty = segment
        for device in ("w_bed", "motion_living"):
            fault = InjectedFault(device, FaultType.FAIL_STOP, segment.start + HOUR)
            faulty = apply_fault(faulty, fault, rng)
        report = detector.process(faulty)
        assert report.detected
