#!/usr/bin/env python
"""Fail CI when a test is skipped without saying why.

A bare ``@pytest.mark.skip`` (or a ``pytest.skip()`` call with no
message) silently removes coverage: six months later nobody remembers
whether the test was flaky, blocked on a dependency, or just in the
way.  This walks every test file's AST and demands a non-empty reason
string on each skip:

* ``@pytest.mark.skip`` / ``@pytest.mark.skipif`` decorators need a
  ``reason="..."`` keyword (skipif may pass it positionally as the
  second argument).
* ``pytest.skip(...)`` / ``pytest.importorskip(...)`` calls need a
  non-empty message / ``reason=``.

Usage::

    python tools/check_skip_reasons.py [tests/ ...]

Exits non-zero listing every offender as ``path:line: message``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

Offence = Tuple[str, int, str]


def _is_attr_chain(node: ast.AST, chain: str) -> bool:
    """True if *node* spells exactly ``a.b.c`` given ``chain='a.b.c'``."""
    parts = chain.split(".")
    for part in reversed(parts[1:]):
        if not (isinstance(node, ast.Attribute) and node.attr == part):
            return False
        node = node.value
    return isinstance(node, ast.Name) and node.id == parts[0]


def _has_reason(call: ast.Call, positional_index: int = -1) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "reason":
            return _non_empty_string(keyword.value)
    if 0 <= positional_index < len(call.args):
        return _non_empty_string(call.args[positional_index])
    return False


def _non_empty_string(node: ast.AST) -> bool:
    # Any non-literal expression is accepted: it presumably computes a
    # message.  Only literal empty/missing strings are offences.
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and bool(node.value.strip())
    return True


def _check_decorator(dec: ast.AST) -> Iterator[str]:
    if isinstance(dec, ast.Call):
        func = dec.func
        if _is_attr_chain(func, "pytest.mark.skip"):
            if not _has_reason(dec, positional_index=0):
                yield "@pytest.mark.skip without a reason"
        elif _is_attr_chain(func, "pytest.mark.skipif"):
            # skipif(condition, reason=...) — reason may be 2nd positional.
            if not _has_reason(dec, positional_index=1):
                yield "@pytest.mark.skipif without a reason"
    elif isinstance(dec, ast.Attribute) and _is_attr_chain(dec, "pytest.mark.skip"):
        yield "bare @pytest.mark.skip without a reason"


def _check_call(call: ast.Call) -> Iterator[str]:
    if _is_attr_chain(call.func, "pytest.skip"):
        if not (call.args and _non_empty_string(call.args[0])) and not _has_reason(call):
            yield "pytest.skip() without a message"
    elif _is_attr_chain(call.func, "pytest.importorskip"):
        if not _has_reason(call):
            yield "pytest.importorskip() without a reason"


def check_file(path: str) -> List[Offence]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    offences: List[Offence] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for dec in node.decorator_list:
                for message in _check_decorator(dec):
                    offences.append((path, dec.lineno, message))
        elif isinstance(node, ast.Call):
            for message in _check_call(node):
                offences.append((path, node.lineno, message))
    return offences


def iter_test_files(roots: List[str]) -> Iterator[str]:
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def main(argv: List[str]) -> int:
    roots = argv or ["tests"]
    offences: List[Offence] = []
    checked = 0
    for path in iter_test_files(roots):
        checked += 1
        offences.extend(check_file(path))
    for path, line, message in offences:
        print(f"{path}:{line}: {message}")
    if offences:
        print(f"{len(offences)} unexplained skip(s) in {checked} file(s)")
        return 1
    print(f"OK: no unexplained skips in {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
